#include "pipeline/executor.hpp"

#include <algorithm>
#include <utility>

#include "common/expect.hpp"
#include "common/log.hpp"
#include "partition/analytic_eval.hpp"

namespace autopipe::pipeline {

const char* switch_phase_name(SwitchPhase phase) {
  switch (phase) {
    case SwitchPhase::kIdle:
      return "idle";
    case SwitchPhase::kPrepare:
      return "prepare";
    case SwitchPhase::kDrain:
      return "drain";
    case SwitchPhase::kTransfer:
      return "transfer";
    case SwitchPhase::kCommit:
      return "commit";
    case SwitchPhase::kAborted:
      return "aborted";
  }
  return "?";
}

PipelineExecutor::PipelineExecutor(sim::Cluster& cluster,
                                   const models::ModelSpec& model,
                                   partition::Partition initial,
                                   ExecutorConfig config)
    : cluster_(cluster),
      model_(model),
      config_(std::move(config)),
      batch_(config_.batch_size ? config_.batch_size
                                : model.default_batch_size()),
      current_partition_(
          std::make_shared<const partition::Partition>(std::move(initial))) {
  AUTOPIPE_EXPECT(current_partition_->num_layers() == model_.num_layers());
  for (sim::WorkerId w : current_partition_->all_workers())
    AUTOPIPE_EXPECT(w < cluster_.num_workers());
  AUTOPIPE_EXPECT(config_.micro_batches >= 1);
  in_flight_ = target_in_flight();
  sync_outstanding_.assign(current_partition_->num_stages(), false);
  stage_timing_.assign(current_partition_->num_stages(), StageTiming{});
  bandwidth_ema_.assign(cluster_.num_workers(),
                        Ema(config_.bandwidth_ema_alpha));
  set_holders_from(*current_partition_);
  worker_cb_token_ =
      cluster_.add_worker_state_callback([this](sim::WorkerId w, bool up) {
        if (up) {
          notify_worker_up(w);
        } else {
          notify_worker_down(w);
        }
      });
  link_cb_token_ =
      cluster_.add_link_state_callback([this](std::size_t server, bool up) {
        if (!up) maybe_abort_switch_on_link(server);
      });
}

PipelineExecutor::~PipelineExecutor() {
  cluster_.remove_worker_state_callback(worker_cb_token_);
  cluster_.remove_link_state_callback(link_cb_token_);
}

void PipelineExecutor::set_iteration_callback(IterationCallback cb) {
  iteration_callback_ = std::move(cb);
}

std::size_t PipelineExecutor::target_in_flight() const {
  if (config_.in_flight) return config_.in_flight;
  return partition::optimal_in_flight(*current_partition_);
}

// ---------------------------------------------------------------------------
// Run loop
// ---------------------------------------------------------------------------

ExecutionReport PipelineExecutor::run(std::size_t iterations,
                                      std::size_t warmup) {
  begin_run(iterations, warmup);
  sim::Simulator& sim = cluster_.simulator();
  while (completed_iterations_ < run_target_) {
    AUTOPIPE_EXPECT_MSG(sim.step(),
                        "pipeline deadlock: event queue drained at iteration "
                            << completed_iterations_ << " of " << run_target_);
  }
  return finish_run();
}

void PipelineExecutor::begin_run(std::size_t iterations, std::size_t warmup) {
  AUTOPIPE_EXPECT(iterations > warmup);
  run_ctx_.prior = completed_iterations_;
  run_ctx_.iterations = iterations;
  run_ctx_.warmup = warmup;
  run_target_ = run_ctx_.prior + iterations;
  running_ = true;

  sim::Simulator& sim = cluster_.simulator();
  run_ctx_.entry_time = sim.now();
  run_ctx_.entry_bytes = cluster_.network().total_bytes_delivered();
  run_ctx_.entry_busy.assign(cluster_.num_workers(), 0.0);
  for (sim::WorkerId w = 0; w < cluster_.num_workers(); ++w)
    run_ctx_.entry_busy[w] = cluster_.gpu(w).busy_time();

  fill_pipeline();
}

ExecutionReport PipelineExecutor::finish_run() {
  AUTOPIPE_EXPECT_MSG(run_complete(),
                      "finish_run before run target reached: "
                          << completed_iterations_ << " of " << run_target_);
  running_ = false;
  sim::Simulator& sim = cluster_.simulator();
  const std::size_t prior = run_ctx_.prior;
  const std::size_t iterations = run_ctx_.iterations;
  const std::size_t warmup = run_ctx_.warmup;
  const Seconds entry_time = run_ctx_.entry_time;

  ExecutionReport report;
  report.iterations = iterations;
  report.batch_size = batch_;
  report.elapsed = sim.now() - entry_time;
  report.bytes_on_wire =
      cluster_.network().total_bytes_delivered() - run_ctx_.entry_bytes;
  report.switches = switches_;
  report.switch_stall = total_switch_stall_;

  // Iteration completion times for this run only.
  report.iteration_end_times.assign(iteration_end_times_.begin() +
                                        static_cast<std::ptrdiff_t>(prior),
                                    iteration_end_times_.end());
  Seconds prev = entry_time;
  for (Seconds t : report.iteration_end_times) {
    const Seconds gap = t - prev;
    report.iteration_throughput.push_back(
        gap > 0.0 ? static_cast<double>(batch_) / gap : 0.0);
    prev = t;
  }

  Seconds measure_start =
      warmup == 0 ? entry_time
                  : iteration_end_times_[prior + warmup - 1];
  Seconds measure_span = sim.now() - measure_start;
  std::size_t measured = iterations - warmup;
  if (measure_span <= 0.0) {
    // A deep pipeline can complete every measured iteration in one burst at
    // a single instant when few iterations are requested relative to the
    // in-flight count; fall back to measuring the whole run.
    measure_start = entry_time;
    measure_span = sim.now() - entry_time;
    measured = iterations;
  }
  AUTOPIPE_EXPECT(measure_span > 0.0);
  report.throughput =
      static_cast<double>(measured * batch_) / measure_span;

  double busy_sum = 0.0;
  const auto workers = current_partition_->all_workers();
  for (sim::WorkerId w : workers)
    busy_sum += (cluster_.gpu(w).busy_time() - run_ctx_.entry_busy[w]);
  report.worker_utilization =
      workers.empty() ? 0.0
                      : busy_sum / (static_cast<double>(workers.size()) *
                                    report.elapsed);
  // Aggregate idle time across the partition's workers — the pipeline
  // bubble. A gauge, so consecutive run() calls report the latest run.
  metrics().set("pipeline.bubble_seconds",
                static_cast<double>(workers.size()) * report.elapsed -
                    busy_sum);
  return report;
}

void PipelineExecutor::fill_pipeline() {
  // A partition routing through a dead worker cannot make progress;
  // injection resumes when the worker returns or a recovery plan lands.
  if (!partition_serviceable()) return;
  if (is_synchronous(config_.mode)) {
    if (config_.halt_injection_at_target &&
        completed_iterations_ >= run_target_)
      return;
    if (sync_state_.empty()) start_sync_iteration();
    return;
  }
  while (active_batches_ < in_flight_ && !draining()) {
    if (config_.halt_injection_at_target &&
        completed_iterations_ + active_batches_ >= run_target_)
      break;
    inject_async_batch();
  }
}

// ---------------------------------------------------------------------------
// Injection
// ---------------------------------------------------------------------------

std::uint64_t PipelineExecutor::make_batch(Route route) {
  const std::uint64_t id = next_batch_id_++;
  batches_.emplace(id, BatchState{std::move(route), 0.0});
  ++active_batches_;
  ++fault_stats_.injected;
  if (replay_credit_ > 0) {
    --replay_credit_;
    ++fault_stats_.replayed;
  }
  return id;
}

void PipelineExecutor::inject_async_batch() {
  Route route;
  route.partition = current_partition_;
  route.micro_size = batch_;
  const std::uint64_t rr = next_round_robin_++;
  for (const auto& stage : current_partition_->stages())
    route.workers.push_back(stage.workers[rr % stage.replication()]);
  const sim::WorkerId entry = route.workers.front();
  const std::uint64_t id = make_batch(std::move(route));
  if (tracer().enabled()) {
    batches_.at(id).last_eid = tracer().instant(
        trace::Category::kCompute, "inject", cluster_.simulator().now(),
        static_cast<int>(entry), 0, {trace::arg("batch", id)});
  }
  start_fp(id, 0);
}

void PipelineExecutor::start_sync_iteration() {
  const std::size_t iter = sync_iter_counter_++;
  auto& state = sync_state_[iter];
  const std::size_t M = config_.micro_batches;
  state.fp_remaining = M;
  state.bp_remaining = M;

  const std::size_t micro_size = std::max<std::size_t>(1, batch_ / M);
  const std::size_t S = current_partition_->num_stages();
  for (std::size_t m = 0; m < M; ++m) {
    Route route;
    route.partition = current_partition_;
    route.micro_size = micro_size;
    route.sync_iteration = iter;
    // Chimera: the second half of the micro-batches flows through the
    // reversed pipeline (stage i on the worker that holds stage S-1-i).
    route.reversed =
        (config_.mode == ScheduleMode::kChimera) && (m >= (M + 1) / 2);
    const std::uint64_t rr = next_round_robin_++;
    for (std::size_t s = 0; s < S; ++s) {
      const auto& stage = current_partition_->stage(
          route.reversed ? S - 1 - s : s);
      route.workers.push_back(stage.workers[rr % stage.replication()]);
    }
    const sim::WorkerId entry = route.workers.front();
    const std::uint64_t id = make_batch(std::move(route));
    if (tracer().enabled()) {
      batches_.at(id).last_eid = tracer().instant(
          trace::Category::kCompute, "inject", cluster_.simulator().now(),
          static_cast<int>(entry), 0,
          {trace::arg("batch", id), trace::arg("micro", m)});
    }
    start_fp(id, 0);
  }
}

// ---------------------------------------------------------------------------
// Stage cost helpers
// ---------------------------------------------------------------------------

Flops PipelineExecutor::stage_fp_flops(const partition::Partition& p,
                                       std::size_t stage,
                                       std::size_t samples) const {
  const auto& st = p.stage(stage);
  return model_.range_fwd_flops(st.first_layer, st.last_layer, samples) /
         config_.framework.compute_efficiency;
}

Flops PipelineExecutor::stage_bp_flops(const partition::Partition& p,
                                       std::size_t stage,
                                       std::size_t samples) const {
  const auto& st = p.stage(stage);
  return model_.range_bwd_flops(st.first_layer, st.last_layer, samples) /
         config_.framework.compute_efficiency;
}

Seconds PipelineExecutor::stage_overhead(const partition::Partition& p,
                                         std::size_t stage) const {
  return config_.framework.per_layer_overhead *
         static_cast<double>(p.stage(stage).num_layers());
}

// ---------------------------------------------------------------------------
// Forward / backward progression
// ---------------------------------------------------------------------------

void PipelineExecutor::start_fp(std::uint64_t batch, std::size_t stage) {
  auto it = batches_.find(batch);
  if (it == batches_.end()) {
    // Dropped by fault recovery while its activation was on the wire.
    ++fault_stats_.orphan_events;
    return;
  }
  auto& state = it->second;
  const Route& route = state.route;
  const partition::Partition& p = *route.partition;
  state.task_started = cluster_.simulator().now();
  cluster_.gpu(route.workers[stage])
      .submit(stage_fp_flops(p, stage, route.micro_size),
              stage_overhead(p, stage),
              [this, batch, stage] { after_fp(batch, stage); });
}

void PipelineExecutor::after_fp(std::uint64_t batch, std::size_t stage) {
  auto it = batches_.find(batch);
  if (it == batches_.end()) {
    ++fault_stats_.orphan_events;
    return;
  }
  auto& state = it->second;
  const Route& route = state.route;
  const partition::Partition& p = *route.partition;
  const std::size_t S = p.num_stages();

  if (route.partition == current_partition_ && !route.reversed) {
    const double scale =
        static_cast<double>(batch_) / static_cast<double>(route.micro_size);
    stage_timing_[stage].fp =
        (cluster_.simulator().now() - state.task_started) * scale;
  }

  if (tracer().enabled()) {
    // The batch's previous op (inject or the inbound activation transfer)
    // is the true dependency; the ambient cause would name whatever GPU
    // completion happened to run last on this worker.
    state.last_eid = tracer().complete(
        trace::Category::kCompute, "fp", state.task_started,
        cluster_.simulator().now(), static_cast<int>(route.workers[stage]),
        static_cast<int>(stage),
        {trace::arg("batch", batch), trace::arg("micro", route.micro_size)},
        state.last_eid);
  }

  if (stage + 1 == S) {
    // Last pipeline position reached.
    if (config_.mode == ScheduleMode::kGPipe) {
      auto& sync = sync_state_.at(route.sync_iteration);
      AUTOPIPE_EXPECT(sync.fp_remaining > 0);
      sync.queued_bp.push_back(batch);
      if (--sync.fp_remaining == 0) {
        // Barrier passed: release every backward pass, last micro first.
        auto queued = std::move(sync.queued_bp);
        for (auto it = queued.rbegin(); it != queued.rend(); ++it)
          start_bp(*it, S - 1);
      }
      return;
    }
    if (is_synchronous(config_.mode)) {
      auto& sync = sync_state_.at(route.sync_iteration);
      AUTOPIPE_EXPECT(sync.fp_remaining > 0);
      --sync.fp_remaining;
    }
    start_bp(batch, S - 1);
    return;
  }

  // Ship the boundary activation downstream, then continue the FP chain.
  Bytes bytes = model_.activation_bytes(p.stage(stage).last_layer,
                                        route.micro_size) /
                config_.framework.comm_efficiency;
  observed_transfer("act", route.workers[stage], route.workers[stage + 1],
                    bytes,
                    [this, batch, stage] { start_fp(batch, stage + 1); },
                    batch);
}

void PipelineExecutor::start_bp(std::uint64_t batch, std::size_t stage) {
  auto it = batches_.find(batch);
  if (it == batches_.end()) {
    ++fault_stats_.orphan_events;
    return;
  }
  auto& state = it->second;
  const Route& route = state.route;
  const partition::Partition& p = *route.partition;
  state.task_started = cluster_.simulator().now();
  Flops work = stage_bp_flops(p, stage, route.micro_size);
  Seconds overhead = stage_overhead(p, stage);
  if (config_.recompute_activations) {
    // Re-run the stage's forward pass to regenerate the discarded
    // activations before backpropagating through them.
    work += stage_fp_flops(p, stage, route.micro_size);
    overhead += stage_overhead(p, stage) / 2.0;
  }
  cluster_.gpu(route.workers[stage])
      .submit_prioritized(work, overhead,
                          [this, batch, stage] { after_bp(batch, stage); });
}

void PipelineExecutor::after_bp(std::uint64_t batch, std::size_t stage) {
  auto it = batches_.find(batch);
  if (it == batches_.end()) {
    ++fault_stats_.orphan_events;
    return;
  }
  auto& state = it->second;
  const Route route = state.route;  // copy: finish_batch erases the entry
  const partition::Partition& p = *route.partition;

  if (route.partition == current_partition_ && !route.reversed) {
    const double scale =
        static_cast<double>(batch_) / static_cast<double>(route.micro_size);
    stage_timing_[stage].bp =
        (cluster_.simulator().now() - state.task_started) * scale;
  }

  if (tracer().enabled()) {
    state.last_eid = tracer().complete(
        trace::Category::kCompute, "bp", state.task_started,
        cluster_.simulator().now(), static_cast<int>(route.workers[stage]),
        static_cast<int>(stage),
        {trace::arg("batch", batch), trace::arg("micro", route.micro_size)},
        state.last_eid);
  }

  if (!is_synchronous(config_.mode)) maybe_async_sync(route, stage);

  if (stage == 0) {
    finish_batch(batch);
    return;
  }
  // Gradient of the tensor that entered this stage on the forward pass.
  const Bytes bytes = model_.activation_bytes(p.stage(stage - 1).last_layer,
                                              route.micro_size) /
                      config_.framework.comm_efficiency;
  observed_transfer("grad", route.workers[stage], route.workers[stage - 1],
                    bytes,
                    [this, batch, stage] { start_bp(batch, stage - 1); },
                    batch);
}

void PipelineExecutor::finish_batch(std::uint64_t batch) {
  const Route route = std::move(batches_.at(batch).route);
  batches_.erase(batch);
  AUTOPIPE_EXPECT(active_batches_ > 0);
  --active_batches_;
  ++fault_stats_.completed;

  if (is_synchronous(config_.mode)) {
    auto& sync = sync_state_.at(route.sync_iteration);
    AUTOPIPE_EXPECT(sync.bp_remaining > 0);
    if (--sync.bp_remaining == 0) run_flush_syncs(route.sync_iteration);
    return;
  }
  on_iteration_complete();
}

// ---------------------------------------------------------------------------
// Weight synchronization
// ---------------------------------------------------------------------------

void PipelineExecutor::maybe_async_sync(const Route& route,
                                        std::size_t logical_stage) {
  // Only batches routed on the current partition drive syncs; a batch
  // completing on a superseded partition updates stashed weights locally.
  if (route.partition != current_partition_) return;
  const auto& stage = current_partition_->stage(logical_stage);
  if (stage.replication() < 2) return;
  // PipeDream-2BW coalesces gradients: a sync round only starts every
  // `in_flight` iterations.
  if (config_.mode == ScheduleMode::kTwoBW &&
      completed_iterations_ % std::max<std::size_t>(1, in_flight_) != 0)
    return;
  if (sync_outstanding_[logical_stage]) return;  // coalesce into in-flight op
  sync_outstanding_[logical_stage] = true;
  const Bytes params =
      model_.range_param_bytes(stage.first_layer, stage.last_layer);
  auto partition_snapshot = current_partition_;
  const Seconds sync_started = cluster_.simulator().now();
  const sim::WorkerId sync_root = stage.workers.front();
  comm::Collective::run(
      config_.sync_scheme, cluster_, stage.workers, params,
      config_.framework.comm_efficiency,
      [this, logical_stage, partition_snapshot, sync_started, sync_root,
       params] {
        if (tracer().enabled()) {
          tracer().complete(trace::Category::kComm, "sync", sync_started,
                            cluster_.simulator().now(),
                            static_cast<int>(sync_root),
                            static_cast<int>(logical_stage),
                            {trace::arg("bytes", params)});
        }
        if (partition_snapshot == current_partition_)
          sync_outstanding_[logical_stage] = false;
      });
}

void PipelineExecutor::run_flush_syncs(std::size_t sync_iter) {
  auto& sync = sync_state_.at(sync_iter);
  AUTOPIPE_EXPECT(sync.syncs_pending == 0);
  const partition::Partition& p = *current_partition_;
  const std::size_t S = p.num_stages();

  auto finish_one = [this, sync_iter] {
    auto it = sync_state_.find(sync_iter);
    if (it == sync_state_.end()) return;  // dropped by fault recovery
    SyncIterationState& st = it->second;
    AUTOPIPE_EXPECT(st.syncs_pending > 0);
    if (--st.syncs_pending == 0) {
      sync_state_.erase(sync_iter);
      on_iteration_complete();
    }
  };

  std::size_t launched = 0;
  for (std::size_t s = 0; s < S; ++s) {
    const auto& stage = p.stage(s);
    std::vector<sim::WorkerId> members = stage.workers;
    if (config_.mode == ScheduleMode::kChimera) {
      // The reversed stream's holder of stage s co-trains its weights.
      const auto& mirror = p.stage(S - 1 - s);
      for (sim::WorkerId w : mirror.workers) {
        if (std::find(members.begin(), members.end(), w) == members.end())
          members.push_back(w);
      }
    }
    if (members.size() < 2) continue;
    ++launched;
    ++sync.syncs_pending;
    const Bytes params =
        model_.range_param_bytes(stage.first_layer, stage.last_layer);
    const Seconds sync_started = cluster_.simulator().now();
    const sim::WorkerId sync_root = members.front();
    comm::Collective::run(
        config_.sync_scheme, cluster_, std::move(members), params,
        config_.framework.comm_efficiency,
        [this, finish_one, sync_started, sync_root, s, params] {
          if (tracer().enabled()) {
            tracer().complete(trace::Category::kComm, "sync_flush",
                              sync_started, cluster_.simulator().now(),
                              static_cast<int>(sync_root),
                              static_cast<int>(s),
                              {trace::arg("bytes", params)});
          }
          finish_one();
        });
  }
  if (launched == 0) {
    sync_state_.erase(sync_iter);
    on_iteration_complete();
  }
}

// ---------------------------------------------------------------------------
// Iteration bookkeeping
// ---------------------------------------------------------------------------

void PipelineExecutor::on_iteration_complete() {
  ++completed_iterations_;
  const Seconds now = cluster_.simulator().now();
  last_iteration_time_ = now - last_iteration_end_;
  last_iteration_end_ = now;
  iteration_end_times_.push_back(now);

  // Rolling series only (never .all() gauges): the time-series sampler and
  // the anomaly detector need instantaneous speed, and series keep the
  // scalar registry — and every golden capture of it — untouched.
  if (last_iteration_time_ > 0.0) {
    metrics().observe("executor.iteration_period", last_iteration_time_);
    metrics().observe("executor.throughput",
                      static_cast<double>(batch_size()) /
                          last_iteration_time_);
  }

  if (draining()) metrics().add("executor.stalled_batches");
  if (tracer().enabled()) {
    if (config_.job_id > 0) {
      tracer().instant(trace::Category::kMark, "iteration", now,
                       trace::kPidControl, 0,
                       {trace::arg("n", completed_iterations_),
                        trace::arg("job", config_.job_id)});
    } else {
      tracer().instant(trace::Category::kMark, "iteration", now,
                       trace::kPidControl, 0,
                       {trace::arg("n", completed_iterations_)});
    }
  }

  if (iteration_callback_) iteration_callback_(completed_iterations_);

  if (draining() && active_batches_ == 0) {
    enter_transfer();
    return;
  }
  if (draining()) return;  // keep draining

  if (is_synchronous(config_.mode)) {
    const bool halted = config_.halt_injection_at_target &&
                        completed_iterations_ >= run_target_;
    if (active_batches_ == 0 && running_ && !halted && partition_serviceable())
      start_sync_iteration();
  } else {
    fill_pipeline();
  }
}

// ---------------------------------------------------------------------------
// Transfers with bandwidth observation
// ---------------------------------------------------------------------------

sim::FlowId PipelineExecutor::observed_transfer(const char* label,
                                                sim::WorkerId src,
                                                sim::WorkerId dst, Bytes bytes,
                                                std::function<void()> done,
                                                std::uint64_t batch_id) {
  const Seconds started = cluster_.simulator().now();
  // Track the flow id so emergency recovery can cancel this executor's
  // outstanding transfers. The holder is filled in after start; the
  // completion callback always runs later (via the event queue).
  auto flow_handle = std::make_shared<sim::FlowId>(0);
  const sim::FlowId flow = cluster_.transfer(
      src, dst, bytes,
      [this, label, src, dst, bytes, started, flow_handle, batch_id,
       done = std::move(done)]() mutable {
        if (*flow_handle != 0) live_flows_.erase(*flow_handle);
        const Seconds d = cluster_.simulator().now() - started;
        if (d > 0.0 && bytes > 0.0) {
          bandwidth_ema_[src].add(bytes / d);
          bandwidth_ema_[dst].add(bytes / d);
        }
        if (tracer().enabled() && src != dst) {
          // The span's cause is ambient: the flow-end event that finished
          // it, which chains back through the flow start to the producing
          // compute op — or to the bandwidth/fault instant that rescheduled
          // the completion. That edge is what lets blame walk from a slow
          // compute span down into the network layer and out to the fault.
          // A batch-owned transfer then becomes its batch's new chain head
          // so the batch's next compute op chains behind it.
          const std::uint64_t eid = tracer().complete(
              trace::Category::kComm, label, started,
              cluster_.simulator().now(), trace::kPidNetwork,
              static_cast<int>(dst),
              {trace::arg("src", src), trace::arg("dst", dst),
               trace::arg("bytes", bytes)});
          if (batch_id != 0) {
            const auto bit = batches_.find(batch_id);
            if (bit != batches_.end()) bit->second.last_eid = eid;
          }
        }
        if (done) done();
      });
  if (flow != 0) {
    *flow_handle = flow;
    live_flows_.insert(flow);
  }
  return flow;
}

BytesPerSec PipelineExecutor::observed_bandwidth(sim::WorkerId worker) const {
  AUTOPIPE_EXPECT(worker < bandwidth_ema_.size());
  if (bandwidth_ema_[worker].empty()) {
    // No transfer has touched this worker yet; report the NIC line rate.
    return cluster_.nic_bandwidth(cluster_.server_of(worker));
  }
  return bandwidth_ema_[worker].value();
}

// ---------------------------------------------------------------------------
// Partition switching
// ---------------------------------------------------------------------------

SwitchPhase PipelineExecutor::switch_phase() const {
  return switch_state_ ? switch_state_->attempt.phase : SwitchPhase::kIdle;
}

std::uint64_t PipelineExecutor::add_switch_observer(SwitchObserver observer) {
  const std::uint64_t token = next_observer_token_++;
  switch_observers_.emplace_back(token, std::move(observer));
  return token;
}

void PipelineExecutor::remove_switch_observer(std::uint64_t token) {
  switch_observers_.erase(
      std::remove_if(switch_observers_.begin(), switch_observers_.end(),
                     [token](const auto& e) { return e.first == token; }),
      switch_observers_.end());
}

void PipelineExecutor::notify_switch_observers(const SwitchAttempt& attempt) {
  // Iterate a copy: an observer may register or remove observers.
  const auto observers = switch_observers_;
  for (const auto& [token, fn] : observers) {
    if (fn) fn(attempt);
  }
}

bool PipelineExecutor::request_switch(partition::Partition next,
                                      SwitchMode mode, std::uint64_t round) {
  if (switch_state_) return false;
  AUTOPIPE_EXPECT(next.num_layers() == model_.num_layers());
  if (next == *current_partition_) return false;
  return start_switch_attempt(std::move(next), mode, round);
}

bool PipelineExecutor::start_switch_attempt(partition::Partition next,
                                            SwitchMode mode,
                                            std::uint64_t round) {
  AUTOPIPE_EXPECT(switch_state_ == nullptr);
  const Seconds now = cluster_.simulator().now();
  ++switch_generation_;
  switch_state_ = std::make_unique<SwitchState>();
  switch_state_->round = round;
  SwitchState& st = *switch_state_;
  SwitchAttempt& attempt = st.attempt;
  attempt.id = ++switch_attempt_counter_;
  attempt.mode = mode;
  attempt.phase = SwitchPhase::kPrepare;
  attempt.requested_at = now;
  attempt.target =
      std::make_shared<const partition::Partition>(std::move(next));

  // Prepare: plan the migration against the current layout. For every layer
  // whose hosting worker set changes, move the weights from one previous
  // holder to every new holder; transfers between the same (src, dst) pair
  // merge into one flow. With weight stashing, the copy belonging to the
  // latest active mini-batch moves first and the remaining versions are
  // reconstructed from it locally, so one version's bytes per layer is the
  // on-wire cost (§4.4).
  //
  // Donor selection is fault-aware: the source is the first *alive* old
  // holder (which in a healthy cluster is old_ws.front(), the historical
  // choice). When every old holder of a layer is dead, the new holder
  // rebuilds the weights from the PipeDream stash it already co-hosts
  // (versioned copies pinned by in-flight batches) — modelled as a free
  // local reconstruction at Commit, counted in
  // fault_stats().weight_reconstructions.
  const partition::Partition& from = *current_partition_;
  const partition::Partition& to = *attempt.target;
  std::unordered_map<std::uint64_t, std::size_t> pair_index;
  auto key = [](sim::WorkerId a, sim::WorkerId b) {
    return (static_cast<std::uint64_t>(a) << 32) | b;
  };
  for (std::size_t layer = 0; layer < model_.num_layers(); ++layer) {
    const auto& old_ws = from.stage(from.stage_of_layer(layer)).workers;
    const auto& new_ws = to.stage(to.stage_of_layer(layer)).workers;
    sim::WorkerId donor = partition::Partition::npos;
    for (sim::WorkerId w : old_ws) {
      if (worker_alive(w)) {
        donor = w;
        break;
      }
    }
    for (sim::WorkerId w : new_ws) {
      if (std::find(old_ws.begin(), old_ws.end(), w) != old_ws.end())
        continue;  // already resident
      if (donor == partition::Partition::npos) {
        st.reconstructions.emplace_back(layer, w);
        continue;  // stash reconstruction on w itself: no wire traffic
      }
      const std::uint64_t k = key(donor, w);
      auto [it, inserted] = pair_index.emplace(k, st.pairs.size());
      if (inserted) st.pairs.push_back(SwitchState::MigrationPair(donor, w));
      SwitchState::MigrationPair& pair = st.pairs[it->second];
      pair.bytes += model_.param_bytes(layer);
      pair.layers.push_back(layer);
    }
  }
  for (const auto& pair : st.pairs) attempt.migration_bytes += pair.bytes;
  attempt.transfers_total = st.pairs.size();

  // Every donor, recipient and target-routed worker participates: losing
  // any of them (or their server's link) aborts the attempt.
  std::unordered_set<sim::WorkerId> involved;
  for (sim::WorkerId w : to.all_workers()) involved.insert(w);
  for (const auto& pair : st.pairs) {
    involved.insert(pair.src);
    involved.insert(pair.dst);
  }
  for (const auto& [layer, w] : st.reconstructions) involved.insert(w);
  attempt.involved_workers.assign(involved.begin(), involved.end());
  std::sort(attempt.involved_workers.begin(), attempt.involved_workers.end());
  std::unordered_set<std::size_t> servers;
  for (sim::WorkerId w : attempt.involved_workers)
    servers.insert(cluster_.server_of(w));
  attempt.involved_servers.assign(servers.begin(), servers.end());
  std::sort(attempt.involved_servers.begin(), attempt.involved_servers.end());

  metrics().add("switch.requested");
  if (tracer().enabled()) {
    trace::Args request_args = {trace::arg("id", attempt.id)};
    if (round != 0) request_args.push_back(trace::arg("round", round));
    // The request instant picks up the ambient cause (the controller
    // decision or fault event driving it); every later phase instant of
    // this attempt chains to its predecessor through st.last_eid.
    st.last_eid = tracer().instant(
        trace::Category::kSwitch,
        mode == SwitchMode::kStopTheWorld ? "switch_request_stw"
                                          : "switch_request_fine",
        now, trace::kPidControl, 0, std::move(request_args));
    trace::Args prepare_args = {trace::arg("id", attempt.id),
                                trace::arg("pairs", st.pairs.size()),
                                trace::arg("bytes", attempt.migration_bytes)};
    if (round != 0) prepare_args.push_back(trace::arg("round", round));
    st.last_eid = tracer().instant(trace::Category::kSwitch, "switch_prepare",
                                   now, trace::kPidControl, 0,
                                   std::move(prepare_args), st.last_eid);
  }
  notify_switch_observers(attempt);

  if (mode == SwitchMode::kStopTheWorld) {
    enter_phase(SwitchPhase::kDrain);
    if (active_batches_ == 0) enter_transfer();
    return true;
  }
  // Fine-grained: migrate concurrently with training, no drain phase.
  enter_transfer();
  return true;
}

void PipelineExecutor::enter_phase(SwitchPhase phase) {
  AUTOPIPE_EXPECT(switch_state_ != nullptr);
  SwitchAttempt& attempt = switch_state_->attempt;
  attempt.phase = phase;
  if (phase == SwitchPhase::kDrain && tracer().enabled()) {
    switch_state_->last_eid = tracer().instant(
        trace::Category::kSwitch, "switch_drain_begin",
        cluster_.simulator().now(), trace::kPidControl, 0,
        {trace::arg("id", attempt.id), trace::arg("active", active_batches_)},
        switch_state_->last_eid);
  }
  notify_switch_observers(attempt);
}

void PipelineExecutor::enter_transfer() {
  AUTOPIPE_EXPECT(switch_state_ != nullptr);
  SwitchState& st = *switch_state_;
  SwitchAttempt& attempt = st.attempt;
  attempt.phase = SwitchPhase::kTransfer;
  const Seconds now = cluster_.simulator().now();
  if (attempt.migration_bytes > 0.0)
    metrics().add("switch.migration_bytes", attempt.migration_bytes);
  if (tracer().enabled()) {
    st.last_eid = tracer().instant(
        trace::Category::kSwitch, "switch_transfer_begin", now,
        trace::kPidControl, 0,
        {trace::arg("id", attempt.id), trace::arg("pairs", st.pairs.size()),
         trace::arg("bytes", attempt.migration_bytes)},
        st.last_eid);
  }
  // Observers fire before the flows start, but an observer-injected fault
  // can only act through a scheduled simulator event, so the transfer state
  // below is always fully set up before any abort can land.
  notify_switch_observers(attempt);
  if (switch_state_ == nullptr ||
      switch_state_->attempt.phase != SwitchPhase::kTransfer)
    return;  // defensive: an observer tore the attempt down synchronously

  if (st.pairs.empty()) {
    commit_switch();
    return;
  }
  st.transfers_pending = st.pairs.size();
  const std::uint64_t generation = switch_generation_;
  for (const auto& pair : st.pairs) {
    const sim::FlowId flow = observed_transfer(
        "migrate", pair.src, pair.dst, pair.bytes,
        [this, generation, dst = pair.dst, bytes = pair.bytes,
         layers = pair.layers] {
          if (generation != switch_generation_)
            return;  // switch aborted by fault recovery mid-flight
          AUTOPIPE_EXPECT(switch_state_ &&
                          switch_state_->transfers_pending > 0);
          SwitchState& live = *switch_state_;
          live.attempt.transferred_bytes += bytes;
          ++live.attempt.transfers_done;
          // The weight copies have physically landed on the recipient.
          for (std::size_t layer : layers) holders_add(layer, dst);
          if (--live.transfers_pending == 0) commit_switch();
        });
    if (flow != 0) st.migration_flows.push_back(flow);
  }
}

void PipelineExecutor::commit_switch() {
  AUTOPIPE_EXPECT(switch_state_ != nullptr);
  SwitchState& st = *switch_state_;
  const SwitchMode mode = st.attempt.mode;
  const Seconds now = cluster_.simulator().now();

  // Stash reconstructions land at Commit: recipients rebuild the layers
  // they could not receive from a dead donor.
  if (!st.reconstructions.empty()) {
    for (const auto& [layer, w] : st.reconstructions) holders_add(layer, w);
    fault_stats_.weight_reconstructions += st.reconstructions.size();
    metrics().add("executor.weight_reconstructed_layers",
                  static_cast<double>(st.reconstructions.size()));
    if (tracer().enabled()) {
      st.last_eid = tracer().instant(
          trace::Category::kFault, "weight_reconstruct", now,
          trace::kPidControl, 0,
          {trace::arg("layers", st.reconstructions.size())}, st.last_eid);
    }
  }

  // Layer-by-layer restaging cost on each worker whose assignment changed
  // (PipeSwitch's per-layer transmission calls): a fixed-time task that
  // briefly occupies the GPU.
  const partition::Partition& to = *st.attempt.target;
  for (sim::WorkerId w : current_partition_->changed_workers(to)) {
    const std::size_t s = to.stage_of_worker(w);
    if (s == partition::Partition::npos) continue;
    if (!worker_alive(w)) continue;  // a down GPU cannot restage
    const std::size_t moved_layers = to.stage(s).num_layers();
    cluster_.gpu(w).submit(
        0.0, config_.switch_overhead_per_layer *
                 static_cast<double>(moved_layers),
        nullptr);
  }

  if (mode == SwitchMode::kStopTheWorld) {
    const Seconds stall = now - st.attempt.requested_at;
    total_switch_stall_ += stall;
    metrics().add("switch.stall_seconds", stall);
  }
  metrics().add("switch.count");
  metrics().add("switch.committed");
  st.attempt.phase = SwitchPhase::kCommit;
  if (tracer().enabled()) {
    trace::Args commit_args = {trace::arg("id", st.attempt.id),
                               trace::arg("bytes",
                                          st.attempt.transferred_bytes)};
    if (st.round != 0) commit_args.push_back(trace::arg("round", st.round));
    st.last_eid = tracer().instant(trace::Category::kSwitch, "switch_commit",
                                   now, trace::kPidControl, 0,
                                   std::move(commit_args), st.last_eid);
    tracer().complete(trace::Category::kSwitch, "switch",
                      st.attempt.requested_at, now, trace::kPidControl, 0,
                      {trace::arg("mode", mode == SwitchMode::kStopTheWorld
                                              ? "stw"
                                              : "fine"),
                       trace::arg("id", st.attempt.id)},
                      st.last_eid);
  }

  current_partition_ = st.attempt.target;
  // Old holders release their primary copies at Commit (in-flight batches
  // finish on stashed versions, accounted in memory.hpp).
  set_holders_from(*current_partition_);
  const SwitchAttempt attempt = std::move(st.attempt);
  switch_state_.reset();
  ++switches_;
  notify_switch_observers(attempt);
  adopt_partition();
}

void PipelineExecutor::abort_switch_attempt(const char* reason,
                                            std::uint64_t cause_eid) {
  if (switch_state_ == nullptr) return;
  if (cause_eid != 0 && tracer().enabled()) {
    // Thread the arbiter's deny instant in as the ambient cause: the abort
    // instant — and the refill events the rollback schedules — then chain
    // across the job boundary to the decision that forced them.
    const std::uint64_t prev = tracer().current_cause();
    tracer().set_current_cause(cause_eid);
    abort_switch(reason);
    tracer().set_current_cause(prev);
    return;
  }
  abort_switch(reason);
}

void PipelineExecutor::abort_switch(const char* reason, bool resume_after) {
  AUTOPIPE_EXPECT(switch_state_ != nullptr);
  SwitchState& st = *switch_state_;
  const Seconds now = cluster_.simulator().now();
  const SwitchPhase at = st.attempt.phase;
  ++switch_generation_;  // orphan any in-flight migrate completions

  // Cancel exactly this attempt's outstanding migration flows; training
  // traffic (act/grad flows) keeps running.
  for (sim::FlowId f : st.migration_flows) {
    if (live_flows_.erase(f) > 0) cluster_.network().cancel_flow(f);
  }

  // Rollback: the pre-switch partition stays authoritative. Weight copies
  // that already landed on recipients are discarded — donors never
  // relinquish theirs before Commit, so no layer loses its last holder.
  const bool rolled_back = at == SwitchPhase::kTransfer;
  for (const auto& pair : st.pairs) {
    for (std::size_t layer : pair.layers) {
      const auto& assigned =
          current_partition_->stage(current_partition_->stage_of_layer(layer))
              .workers;
      if (std::find(assigned.begin(), assigned.end(), pair.dst) ==
          assigned.end())
        holders_remove(layer, pair.dst);
    }
  }

  metrics().add(std::string("switch.aborted.") + switch_phase_name(at));
  metrics().add("executor.switches_aborted");
  if (rolled_back) {
    metrics().add("switch.rolled_back");
    if (st.attempt.transferred_bytes > 0.0)
      metrics().add("switch.rollback_bytes", st.attempt.transferred_bytes);
  }
  if (tracer().enabled()) {
    // The abort instant keeps its *ambient* cause — the fault or emergency
    // event that triggered it — which is the edge the blame engine follows;
    // the rollback and terminal span then chain behind the abort.
    std::uint64_t abort_eid = tracer().instant(
        trace::Category::kSwitch, "switch_abort", now, trace::kPidControl, 0,
        {trace::arg("id", st.attempt.id),
         trace::arg("phase", switch_phase_name(at)),
         trace::arg("reason", reason)});
    if (rolled_back) {
      abort_eid = tracer().instant(
          trace::Category::kSwitch, "switch_rollback", now,
          trace::kPidControl, 0,
          {trace::arg("id", st.attempt.id),
           trace::arg("bytes", st.attempt.transferred_bytes)},
          abort_eid);
    }
    tracer().complete(trace::Category::kSwitch, "switch_aborted",
                      st.attempt.requested_at, now, trace::kPidControl, 0,
                      {trace::arg("mode",
                                  st.attempt.mode == SwitchMode::kStopTheWorld
                                      ? "stw"
                                      : "fine"),
                       trace::arg("phase", switch_phase_name(at)),
                       trace::arg("reason", reason),
                       trace::arg("id", st.attempt.id)},
                      abort_eid);
  }

  st.attempt.aborted_in = at;
  st.attempt.phase = SwitchPhase::kAborted;
  st.attempt.abort_reason = reason;
  const SwitchAttempt attempt = std::move(st.attempt);
  switch_state_.reset();
  ++switches_aborted_;
  notify_switch_observers(attempt);
  // Rollback resumes the pre-switch regime: a stop-the-world drain stops
  // blocking injection. Retry policy lives with the controller (it observes
  // the terminal notification above and backs off through the simulator).
  if (resume_after) resume_if_possible();
}

void PipelineExecutor::maybe_abort_switch_on_worker(sim::WorkerId worker) {
  if (!switch_state_) return;
  const auto& involved = switch_state_->attempt.involved_workers;
  if (std::binary_search(involved.begin(), involved.end(), worker))
    abort_switch("worker_loss");
}

void PipelineExecutor::maybe_abort_switch_on_link(std::size_t server) {
  if (!switch_state_) return;
  const auto& involved = switch_state_->attempt.involved_servers;
  if (std::binary_search(involved.begin(), involved.end(), server))
    abort_switch("link_loss");
}

// ---------------------------------------------------------------------------
// Weight-holder bookkeeping
// ---------------------------------------------------------------------------

void PipelineExecutor::set_holders_from(const partition::Partition& p) {
  layer_holders_.assign(model_.num_layers(), {});
  for (std::size_t layer = 0; layer < model_.num_layers(); ++layer) {
    std::vector<sim::WorkerId> ws = p.stage(p.stage_of_layer(layer)).workers;
    std::sort(ws.begin(), ws.end());
    layer_holders_[layer] = std::move(ws);
  }
}

void PipelineExecutor::holders_add(std::size_t layer, sim::WorkerId worker) {
  auto& hs = layer_holders_[layer];
  const auto it = std::lower_bound(hs.begin(), hs.end(), worker);
  if (it == hs.end() || *it != worker) hs.insert(it, worker);
}

void PipelineExecutor::holders_remove(std::size_t layer,
                                      sim::WorkerId worker) {
  auto& hs = layer_holders_[layer];
  const auto it = std::lower_bound(hs.begin(), hs.end(), worker);
  if (it == hs.end() || *it != worker) return;
  hs.erase(it);
  AUTOPIPE_EXPECT_MSG(!hs.empty(),
                      "weight conservation violated: layer "
                          << layer << " lost its last holder");
}

bool PipelineExecutor::weight_layout_consistent() const {
  if (layer_holders_.size() != model_.num_layers()) return false;
  for (std::size_t layer = 0; layer < model_.num_layers(); ++layer) {
    const auto& holders = layer_holders_[layer];
    if (holders.empty()) return false;
    const auto& assigned =
        current_partition_->stage(current_partition_->stage_of_layer(layer))
            .workers;
    // Every routed worker must hold its stage's layers...
    for (sim::WorkerId w : assigned) {
      if (!std::binary_search(holders.begin(), holders.end(), w))
        return false;
    }
    // ...and outside a switch no worker may hold a layer the layout does
    // not assign to it (never half-transitioned).
    if (!switch_state_) {
      for (sim::WorkerId h : holders) {
        if (std::find(assigned.begin(), assigned.end(), h) == assigned.end())
          return false;
      }
    }
  }
  return true;
}

void PipelineExecutor::adopt_partition() {
  sync_outstanding_.assign(current_partition_->num_stages(), false);
  stage_timing_.assign(current_partition_->num_stages(), StageTiming{});
  in_flight_ = target_in_flight();
  degraded_ = false;
  degraded_lost_.clear();  // a new plan supersedes any pending rejoin
  if (running_) fill_pipeline();
}

// ---------------------------------------------------------------------------
// Fault recovery
// ---------------------------------------------------------------------------

bool PipelineExecutor::worker_alive(sim::WorkerId worker) const {
  return dead_workers_.count(worker) == 0 && cluster_.worker_up(worker);
}

bool PipelineExecutor::partition_serviceable() const {
  if (dead_workers_.empty()) return true;
  for (sim::WorkerId w : current_partition_->all_workers()) {
    if (dead_workers_.count(w)) return false;
  }
  return true;
}

void PipelineExecutor::drop_batch(std::uint64_t batch, bool credit_replay) {
  auto it = batches_.find(batch);
  if (it == batches_.end()) return;
  batches_.erase(it);
  AUTOPIPE_EXPECT(active_batches_ > 0);
  --active_batches_;
  ++fault_stats_.dropped;
  if (credit_replay) ++replay_credit_;
  metrics().add("executor.dropped_batches");
}

std::size_t PipelineExecutor::drop_batches_through(sim::WorkerId worker) {
  // Forward route == backward route under PipeDream semantics, so a batch
  // routed through the lost worker at *any* stage can no longer complete.
  std::vector<std::uint64_t> doomed;
  std::unordered_set<std::size_t> doomed_iterations;
  for (const auto& [id, state] : batches_) {
    const auto& ws = state.route.workers;
    if (std::find(ws.begin(), ws.end(), worker) != ws.end()) {
      doomed.push_back(id);
      if (is_synchronous(config_.mode))
        doomed_iterations.insert(state.route.sync_iteration);
    }
  }
  if (is_synchronous(config_.mode)) {
    // A sync iteration that lost any micro-batch can never pass its
    // barrier: drop the whole iteration and let injection restart it.
    for (const auto& [id, state] : batches_) {
      if (doomed_iterations.count(state.route.sync_iteration) &&
          std::find(doomed.begin(), doomed.end(), id) == doomed.end()) {
        doomed.push_back(id);
      }
    }
    for (std::size_t iter : doomed_iterations) sync_state_.erase(iter);
  }
  for (std::uint64_t id : doomed) {
    // Sync iterations are re-run wholesale rather than replayed batch by
    // batch, so only async drops arm replay credits.
    drop_batch(id, !is_synchronous(config_.mode));
  }
  return doomed.size();
}

void PipelineExecutor::repair_degraded(sim::WorkerId worker) {
  const std::size_t s = current_partition_->stage_of_worker(worker);
  if (s == partition::Partition::npos) return;  // not in the current plan
  if (current_partition_->stage(s).replication() < 2)
    return;  // sole holder lost: stall until recovery or emergency re-plan
  std::vector<partition::StageAssignment> stages =
      current_partition_->stages();
  auto& ws = stages[s].workers;
  ws.erase(std::remove(ws.begin(), ws.end(), worker), ws.end());
  current_partition_ = std::make_shared<const partition::Partition>(
      partition::Partition(std::move(stages), model_.num_layers()));
  degraded_ = true;
  degraded_lost_[worker] = s;
  // The repaired layout no longer routes through the worker; its (intact,
  // preemption keeps device memory) copies leave the authoritative holder
  // set so the layout stays consistent. Replication >= 2 guarantees a
  // surviving holder per layer.
  for (std::size_t layer = 0; layer < model_.num_layers(); ++layer) {
    if (current_partition_->stage_of_layer(layer) == s)
      holders_remove(layer, worker);
  }
  // Same stage count: timings stay comparable, sync gating restarts.
  sync_outstanding_.assign(current_partition_->num_stages(), false);
  in_flight_ = target_in_flight();
  metrics().add("executor.degraded_repairs");
  if (tracer().enabled()) {
    tracer().instant(trace::Category::kFault, "degraded_mode",
                     cluster_.simulator().now(), static_cast<int>(worker),
                     static_cast<int>(s),
                     {trace::arg("replicas",
                                 current_partition_->stage(s).replication())});
  }
}

void PipelineExecutor::resume_if_possible() {
  if (!running_) return;
  // A draining stop-the-world switch normally advances from the iteration
  // callback; when a fault drops the last in-flight batch there will be no
  // more iterations, so complete the drain here.
  if (draining() && active_batches_ == 0) {
    enter_transfer();
    return;
  }
  if (!partition_serviceable()) return;
  if (is_synchronous(config_.mode)) {
    if (active_batches_ == 0 && sync_state_.empty() && !draining()) {
      start_sync_iteration();
    }
  } else {
    fill_pipeline();
  }
}

void PipelineExecutor::notify_worker_down(sim::WorkerId worker) {
  if (!dead_workers_.insert(worker).second) return;
  // A switch that involves the lost worker (as donor, recipient or routed
  // target) can no longer complete: abort before repairing the steady-state
  // layout so the rollback lands against the pre-switch partition.
  maybe_abort_switch_on_worker(worker);
  const std::size_t dropped = drop_batches_through(worker);
  repair_degraded(worker);
  if (tracer().enabled()) {
    tracer().instant(trace::Category::kFault, "worker_loss",
                     cluster_.simulator().now(), static_cast<int>(worker), 0,
                     {trace::arg("dropped", dropped),
                      trace::arg("degraded", degraded_ ? 1 : 0)});
  }
  metrics().add("executor.worker_losses");
  // Replicated stages keep serving with fewer replicas; replays for the
  // dropped batches flow in immediately. A sole-worker stage leaves the
  // partition unserviceable and injection stalls here.
  resume_if_possible();
}

void PipelineExecutor::notify_worker_up(sim::WorkerId worker) {
  if (dead_workers_.erase(worker) == 0) return;
  if (tracer().enabled()) {
    tracer().instant(trace::Category::kFault, "worker_return",
                     cluster_.simulator().now(), static_cast<int>(worker), 0);
  }
  metrics().add("executor.worker_returns");
  // A worker a degraded-mode repair dropped from a replicated stage rejoins
  // that stage in place: preemption keeps device memory, so only the weight
  // versions it missed need reconstructing from a surviving replica's
  // PipeDream stash (local, no wire traffic). Re-admission into a *new*
  // plan — after an emergency re-plan — remains the controller's call.
  const auto lost = degraded_lost_.find(worker);
  if (lost != degraded_lost_.end()) {
    const std::size_t s = lost->second;
    degraded_lost_.erase(lost);
    if (s < current_partition_->num_stages() &&
        current_partition_->stage_of_worker(worker) ==
            partition::Partition::npos) {
      std::vector<partition::StageAssignment> stages =
          current_partition_->stages();
      stages[s].workers.push_back(worker);
      current_partition_ = std::make_shared<const partition::Partition>(
          partition::Partition(std::move(stages), model_.num_layers()));
      sync_outstanding_.assign(current_partition_->num_stages(), false);
      in_flight_ = target_in_flight();
      if (degraded_lost_.empty()) degraded_ = false;
      for (std::size_t layer = 0; layer < model_.num_layers(); ++layer) {
        if (current_partition_->stage_of_layer(layer) == s)
          holders_add(layer, worker);
      }
      const std::size_t layers = current_partition_->stage(s).num_layers();
      fault_stats_.weight_reconstructions += layers;
      metrics().add("executor.weight_reconstructed_layers",
                    static_cast<double>(layers));
      metrics().add("executor.worker_rejoins");
      if (tracer().enabled()) {
        tracer().instant(trace::Category::kFault, "worker_rejoin",
                         cluster_.simulator().now(),
                         static_cast<int>(worker), static_cast<int>(s),
                         {trace::arg("layers", layers)});
      }
    }
  }
  // Preemption keeps device memory: the returned worker still holds its
  // stashed weights, so a pipeline stalled on it resumes by itself.
  resume_if_possible();
}

bool PipelineExecutor::emergency_adopt(partition::Partition next) {
  AUTOPIPE_EXPECT(next.num_layers() == model_.num_layers());
  for (sim::WorkerId w : next.all_workers()) {
    AUTOPIPE_EXPECT(w < cluster_.num_workers());
    if (!worker_alive(w) || !cluster_.worker_reachable(w)) return false;
  }
  const Seconds now = cluster_.simulator().now();

  // Abort any in-flight switch attempt through the staged protocol (this
  // cancels its migration flows and rolls holders back); retry policy
  // lives in the controller, which sees the terminal notification.
  if (switch_state_) abort_switch("emergency", /*resume_after=*/false);

  // Drop whatever is in flight — the batches (conserved and, for async
  // schedules, replayed), the sync-iteration barriers, and this executor's
  // outstanding transfers.
  std::size_t dropped = 0;
  while (!batches_.empty()) {
    drop_batch(batches_.begin()->first, !is_synchronous(config_.mode));
    ++dropped;
  }
  sync_state_.clear();
  for (sim::FlowId f : live_flows_) cluster_.network().cancel_flow(f);
  live_flows_.clear();

  metrics().add("executor.emergency_adopts");
  if (tracer().enabled()) {
    tracer().instant(trace::Category::kFault, "emergency_adopt", now,
                     trace::kPidControl, 0,
                     {trace::arg("dropped", dropped),
                      trace::arg("partition", next.to_string())});
  }

  if (next == *current_partition_) {
    // Nothing to migrate (e.g. a link flap unwedged by dropping the stalled
    // batches): resume on the plan already in place.
    degraded_ = false;
    resume_if_possible();
    return true;
  }
  // Stop-the-world with an instantly-complete drain: the pipeline is
  // already empty, so the attempt advances straight to Transfer.
  return start_switch_attempt(std::move(next), SwitchMode::kStopTheWorld);
}

}  // namespace autopipe::pipeline
