// Device-memory footprint accounting. PipeDream's weight stashing keeps one
// weight version per active mini-batch; PipeDream-2BW double-buffers (2
// versions); synchronous schedules keep 1 but stash per-micro-batch
// activations until the flush. The executor does not enforce these limits —
// the planner consults them to reject infeasible plans, and tests assert
// the arithmetic.
#pragma once

#include <cstddef>

#include "common/units.hpp"
#include "models/model.hpp"
#include "partition/partition.hpp"
#include "pipeline/schedule.hpp"
#include "sim/cluster.hpp"

namespace autopipe::pipeline {

/// Weight versions a schedule keeps resident.
std::size_t weight_versions(ScheduleMode mode, std::size_t in_flight);

/// Estimated bytes resident on `worker` under the given plan: parameters x
/// versions (+ optimizer state, modelled as 2x parameters) plus stashed
/// activations for the in-flight batches passing through its stage.
Bytes worker_memory_footprint(const models::ModelSpec& model,
                              const partition::Partition& partition,
                              sim::WorkerId worker, std::size_t batch,
                              ScheduleMode mode, std::size_t in_flight,
                              bool recompute_activations = false);

/// True if every worker's footprint fits its GPU.
bool plan_fits_memory(const sim::Cluster& cluster,
                      const models::ModelSpec& model,
                      const partition::Partition& partition,
                      std::size_t batch, ScheduleMode mode,
                      std::size_t in_flight);

}  // namespace autopipe::pipeline
