// Fault injection for the shared-cluster simulation. A FaultPlan is a
// deterministic schedule of hard failures — GPU preemption/eviction and
// return, NIC/link failure and flapping, transient compute stragglers and
// profiler dropouts — applied to a Cluster as first-class simulator events.
// Plans come from three sources: built by hand (tests), parsed from a
// schedule file or inline spec (`autopipe_sim --faults=`), or generated from
// a seeded ChaosSpec (the chaos harness), so the same schedule replays
// byte-identically run after run.
//
// Down/up transitions are *state* transitions, not capacity changes: a down
// GPU drops its in-flight kernels and rejects work, a down link remembers
// its nominal bandwidth and stalls (not cancels) in-flight flows. See
// docs/FAULTS.md for the fault model and the recovery semantics layered on
// top by pipeline::PipelineExecutor and autopipe::AutoPipeController.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "sim/cluster.hpp"

namespace autopipe::faults {

struct FaultEvent {
  enum class Kind {
    kGpuDown,         ///< index = worker: preemption/eviction
    kGpuUp,           ///< index = worker: the evicted GPU returns
    kLinkDown,        ///< index = server: NIC failure (both directions)
    kLinkUp,          ///< index = server
    kStragglerBegin,  ///< index = worker, value = throughput scale in (0,1)
    kStragglerEnd,    ///< index = worker: back to nominal throughput
    kProfilerDrop,    ///< index = worker: measurements go stale
    kProfilerRestore, ///< index = worker
  };

  Kind kind = Kind::kGpuDown;
  std::size_t index = 0;
  double value = 0.0;

  /// Human-readable description for logs and harness output.
  std::string describe() const;
};

/// One scheduled point; fault schedules are anchored in simulated time.
struct FaultPoint {
  Seconds at = 0.0;
  FaultEvent event;
};

/// Shape of a seeded random fault schedule. Every outage injected is paired
/// with its recovery no later than `clear_by`, so post-fault-recovery
/// invariants have a well-defined "after the dust settles" point. One
/// randomly chosen server is never touched (its GPUs are not preempted and
/// its link never fails) so an emergency re-plan always has somewhere to go.
struct ChaosSpec {
  std::uint64_t seed = 1;
  Seconds start = 2.0;    ///< earliest injection time
  Seconds clear_by = 25.0;  ///< every fault recovered by this time
  std::size_t gpu_preemptions = 2;
  std::size_t link_failures = 1;
  std::size_t link_flaps = 1;  ///< short down/up bursts on one link
  std::size_t stragglers = 2;
  std::size_t profiler_drops = 1;
  Seconds min_outage = 0.5;
  Seconds max_outage = 4.0;
  Seconds flap_outage = 0.3;  ///< per-flap downtime
  double straggler_scale_lo = 0.2;
  double straggler_scale_hi = 0.6;
};

class FaultPlan {
 public:
  /// Append an event at absolute simulated time t.
  FaultPlan& at(Seconds t, FaultEvent ev);

  // Convenience pair schedulers (outage + recovery).
  FaultPlan& preempt_gpu(sim::WorkerId worker, Seconds t, Seconds outage);
  FaultPlan& fail_link(std::size_t server, Seconds t, Seconds outage);
  /// `flaps` down/up cycles of `outage` downtime separated by `outage` up.
  FaultPlan& flap_link(std::size_t server, Seconds t, Seconds outage,
                       std::size_t flaps);
  FaultPlan& straggle(sim::WorkerId worker, Seconds t, Seconds duration,
                      double scale);
  FaultPlan& drop_profiler(sim::WorkerId worker, Seconds t, Seconds duration);

  /// Schedule every point on the simulator (events labelled
  /// "fault_injection"). `on_fault`, if set, fires after each applied event.
  void install(sim::Simulator& simulator, sim::Cluster& cluster,
               std::function<void(const FaultEvent&)> on_fault = {}) const;

  /// Apply one event to the cluster now.
  static void apply(const FaultEvent& ev, sim::Cluster& cluster);

  const std::vector<FaultPoint>& points() const { return points_; }
  bool empty() const { return points_.empty(); }
  std::size_t size() const { return points_.size(); }

  /// Time of the last scheduled point (0 for an empty plan).
  Seconds horizon() const;

  // Event constructors.
  static FaultEvent gpu_down(sim::WorkerId worker);
  static FaultEvent gpu_up(sim::WorkerId worker);
  static FaultEvent link_down(std::size_t server);
  static FaultEvent link_up(std::size_t server);
  static FaultEvent straggler_begin(sim::WorkerId worker, double scale);
  static FaultEvent straggler_end(sim::WorkerId worker);
  static FaultEvent profiler_drop(sim::WorkerId worker);
  static FaultEvent profiler_restore(sim::WorkerId worker);

 private:
  std::vector<FaultPoint> points_;
};

/// Generate a seeded random plan shaped by `spec` for a cluster of the given
/// size. Same (spec, shape) → identical plan.
FaultPlan random_plan(const ChaosSpec& spec, std::size_t num_servers,
                      std::size_t gpus_per_server);

/// Parse a `--faults=` spec:
///  * `@path` — schedule file, one event per line:
///        <time> gpu_down <worker>
///        <time> gpu_up <worker>
///        <time> link_down <server>
///        <time> link_up <server>
///        <time> straggler_begin <worker> <scale>
///        <time> straggler_end <worker>
///        <time> profiler_drop <worker>
///        <time> profiler_restore <worker>
///    Blank lines and lines starting with '#' are ignored.
///  * `random:key=value,...` — seeded ChaosSpec; keys: seed, start, clear,
///    gpus, links, flaps, stragglers, profiler_drops, min_outage,
///    max_outage.
///  * anything else — inline schedule, lines separated by ';'.
/// Throws contract_error with a line/key diagnostic on a malformed spec.
FaultPlan parse_spec(const std::string& spec, std::size_t num_servers,
                     std::size_t gpus_per_server);

}  // namespace autopipe::faults
