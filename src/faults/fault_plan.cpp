#include "faults/fault_plan.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/expect.hpp"
#include "common/profile.hpp"

namespace autopipe::faults {

std::string FaultEvent::describe() const {
  std::ostringstream os;
  switch (kind) {
    case Kind::kGpuDown:
      os << "gpu_down worker=" << index;
      break;
    case Kind::kGpuUp:
      os << "gpu_up worker=" << index;
      break;
    case Kind::kLinkDown:
      os << "link_down server=" << index;
      break;
    case Kind::kLinkUp:
      os << "link_up server=" << index;
      break;
    case Kind::kStragglerBegin:
      os << "straggler_begin worker=" << index << " scale=" << value;
      break;
    case Kind::kStragglerEnd:
      os << "straggler_end worker=" << index;
      break;
    case Kind::kProfilerDrop:
      os << "profiler_drop worker=" << index;
      break;
    case Kind::kProfilerRestore:
      os << "profiler_restore worker=" << index;
      break;
  }
  return os.str();
}

FaultPlan& FaultPlan::at(Seconds t, FaultEvent ev) {
  AUTOPIPE_EXPECT(t >= 0.0);
  points_.push_back(FaultPoint{t, std::move(ev)});
  return *this;
}

FaultPlan& FaultPlan::preempt_gpu(sim::WorkerId worker, Seconds t,
                                  Seconds outage) {
  AUTOPIPE_EXPECT(outage > 0.0);
  at(t, gpu_down(worker));
  at(t + outage, gpu_up(worker));
  return *this;
}

FaultPlan& FaultPlan::fail_link(std::size_t server, Seconds t,
                                Seconds outage) {
  AUTOPIPE_EXPECT(outage > 0.0);
  at(t, link_down(server));
  at(t + outage, link_up(server));
  return *this;
}

FaultPlan& FaultPlan::flap_link(std::size_t server, Seconds t, Seconds outage,
                                std::size_t flaps) {
  AUTOPIPE_EXPECT(outage > 0.0);
  AUTOPIPE_EXPECT(flaps >= 1);
  for (std::size_t i = 0; i < flaps; ++i) {
    const Seconds begin = t + static_cast<double>(i) * 2.0 * outage;
    fail_link(server, begin, outage);
  }
  return *this;
}

FaultPlan& FaultPlan::straggle(sim::WorkerId worker, Seconds t,
                               Seconds duration, double scale) {
  AUTOPIPE_EXPECT(duration > 0.0);
  AUTOPIPE_EXPECT(scale > 0.0 && scale < 1.0);
  at(t, straggler_begin(worker, scale));
  at(t + duration, straggler_end(worker));
  return *this;
}

FaultPlan& FaultPlan::drop_profiler(sim::WorkerId worker, Seconds t,
                                    Seconds duration) {
  AUTOPIPE_EXPECT(duration > 0.0);
  at(t, profiler_drop(worker));
  at(t + duration, profiler_restore(worker));
  return *this;
}

void FaultPlan::install(sim::Simulator& simulator, sim::Cluster& cluster,
                        std::function<void(const FaultEvent&)> on_fault) const {
  if (simulator.tracer().enabled()) {
    // Record the worker -> server layout up front. Trace analysis normally
    // infers it from network flows, but a single-stage (all-replicated)
    // partition produces none — and link outages are keyed by server, so
    // without this the downtime would attach to no worker.
    for (sim::WorkerId w = 0; w < cluster.num_workers(); ++w) {
      simulator.tracer().instant(trace::Category::kFault, "topology",
                                 simulator.now(), static_cast<int>(w),
                                 static_cast<int>(cluster.server_of(w)));
    }
  }
  for (const FaultPoint& p : points_) {
    FaultEvent ev = p.event;
    simulator.at(
        p.at,
        [ev, &cluster, on_fault] {
          apply(ev, cluster);
          if (on_fault) on_fault(ev);
        },
        "fault_injection");
  }
}

void FaultPlan::apply(const FaultEvent& ev, sim::Cluster& cluster) {
  PROF_SPAN("faults/apply");
  sim::Simulator& sim = cluster.simulator();
  switch (ev.kind) {
    case FaultEvent::Kind::kGpuDown:
      cluster.set_worker_down(ev.index);
      break;
    case FaultEvent::Kind::kGpuUp:
      cluster.set_worker_up(ev.index);
      break;
    case FaultEvent::Kind::kLinkDown:
      cluster.set_link_down(ev.index);
      break;
    case FaultEvent::Kind::kLinkUp:
      cluster.set_link_up(ev.index);
      break;
    case FaultEvent::Kind::kStragglerBegin:
      // A straggler still makes progress — a soft fault, applied as a
      // throughput scale rather than a down transition.
      cluster.gpu(ev.index).set_throughput_scale(ev.value);
      if (sim.tracer().enabled()) {
        sim.tracer().instant(trace::Category::kFault, "straggler_begin",
                             sim.now(), static_cast<int>(ev.index), 0,
                             {trace::arg("scale", ev.value)});
      }
      sim.metrics().add("cluster.straggler", 1.0);
      break;
    case FaultEvent::Kind::kStragglerEnd:
      cluster.gpu(ev.index).set_throughput_scale(1.0);
      if (sim.tracer().enabled()) {
        sim.tracer().instant(trace::Category::kFault, "straggler_end",
                             sim.now(), static_cast<int>(ev.index), 0);
      }
      break;
    case FaultEvent::Kind::kProfilerDrop:
      cluster.set_profiler_muted(ev.index, true);
      break;
    case FaultEvent::Kind::kProfilerRestore:
      cluster.set_profiler_muted(ev.index, false);
      break;
  }
}

Seconds FaultPlan::horizon() const {
  Seconds h = 0.0;
  for (const FaultPoint& p : points_) h = std::max(h, p.at);
  return h;
}

FaultEvent FaultPlan::gpu_down(sim::WorkerId worker) {
  return FaultEvent{FaultEvent::Kind::kGpuDown, worker, 0.0};
}
FaultEvent FaultPlan::gpu_up(sim::WorkerId worker) {
  return FaultEvent{FaultEvent::Kind::kGpuUp, worker, 0.0};
}
FaultEvent FaultPlan::link_down(std::size_t server) {
  return FaultEvent{FaultEvent::Kind::kLinkDown, server, 0.0};
}
FaultEvent FaultPlan::link_up(std::size_t server) {
  return FaultEvent{FaultEvent::Kind::kLinkUp, server, 0.0};
}
FaultEvent FaultPlan::straggler_begin(sim::WorkerId worker, double scale) {
  return FaultEvent{FaultEvent::Kind::kStragglerBegin, worker, scale};
}
FaultEvent FaultPlan::straggler_end(sim::WorkerId worker) {
  return FaultEvent{FaultEvent::Kind::kStragglerEnd, worker, 0.0};
}
FaultEvent FaultPlan::profiler_drop(sim::WorkerId worker) {
  return FaultEvent{FaultEvent::Kind::kProfilerDrop, worker, 0.0};
}
FaultEvent FaultPlan::profiler_restore(sim::WorkerId worker) {
  return FaultEvent{FaultEvent::Kind::kProfilerRestore, worker, 0.0};
}

FaultPlan random_plan(const ChaosSpec& spec, std::size_t num_servers,
                      std::size_t gpus_per_server) {
  AUTOPIPE_EXPECT(num_servers >= 1);
  AUTOPIPE_EXPECT(gpus_per_server >= 1);
  AUTOPIPE_EXPECT(spec.clear_by > spec.start);
  AUTOPIPE_EXPECT(spec.max_outage >= spec.min_outage);
  const std::size_t num_workers = num_servers * gpus_per_server;
  Rng rng(spec.seed);

  // One server is never harmed so an emergency re-plan always has a
  // reachable landing zone, whatever the draw.
  const std::size_t protected_server = static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(num_servers) - 1));

  FaultPlan plan;
  const Seconds window = spec.clear_by - spec.start;
  auto draw_time = [&](Seconds outage) {
    // Start early enough that the recovery lands before clear_by.
    const Seconds latest = std::max(spec.start, spec.clear_by - outage);
    return rng.uniform(spec.start, std::max(spec.start + 1e-9, latest));
  };
  auto draw_outage = [&] {
    return rng.uniform(spec.min_outage,
                       std::min(spec.max_outage, window));
  };
  auto draw_worker = [&](bool avoid_protected) {
    for (;;) {
      const auto w = static_cast<sim::WorkerId>(
          rng.uniform_int(0, static_cast<std::int64_t>(num_workers) - 1));
      if (!avoid_protected || w / gpus_per_server != protected_server)
        return w;
    }
  };
  auto draw_server = [&] {
    for (;;) {
      const auto s = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(num_servers) - 1));
      if (s != protected_server || num_servers == 1) return s;
    }
  };

  for (std::size_t i = 0; i < spec.gpu_preemptions; ++i) {
    const Seconds outage = draw_outage();
    plan.preempt_gpu(draw_worker(num_servers > 1), draw_time(outage), outage);
  }
  for (std::size_t i = 0; i < spec.link_failures && num_servers > 1; ++i) {
    const Seconds outage = draw_outage();
    plan.fail_link(draw_server(), draw_time(outage), outage);
  }
  for (std::size_t i = 0; i < spec.link_flaps && num_servers > 1; ++i) {
    const std::size_t flaps =
        static_cast<std::size_t>(rng.uniform_int(2, 4));
    const Seconds burst = 2.0 * spec.flap_outage * static_cast<double>(flaps);
    plan.flap_link(draw_server(), draw_time(burst), spec.flap_outage, flaps);
  }
  for (std::size_t i = 0; i < spec.stragglers; ++i) {
    const Seconds duration = draw_outage();
    plan.straggle(draw_worker(false), draw_time(duration), duration,
                  rng.uniform(spec.straggler_scale_lo,
                              spec.straggler_scale_hi));
  }
  for (std::size_t i = 0; i < spec.profiler_drops; ++i) {
    const Seconds duration = draw_outage();
    plan.drop_profiler(draw_worker(false), draw_time(duration), duration);
  }
  return plan;
}

namespace {

FaultEvent parse_event_line(const std::string& line, std::size_t line_no,
                            Seconds& t_out) {
  std::istringstream ls(line);
  std::string kind;
  double t = -1.0;
  std::size_t index = 0;
  AUTOPIPE_EXPECT_MSG(static_cast<bool>(ls >> t >> kind >> index),
                      "fault spec line " << line_no << ": expected "
                      "'<time> <kind> <index> [value]', got '" << line << "'");
  t_out = t;
  if (kind == "gpu_down") return FaultPlan::gpu_down(index);
  if (kind == "gpu_up") return FaultPlan::gpu_up(index);
  if (kind == "link_down") return FaultPlan::link_down(index);
  if (kind == "link_up") return FaultPlan::link_up(index);
  if (kind == "straggler_begin") {
    double scale = 0.0;
    AUTOPIPE_EXPECT_MSG(static_cast<bool>(ls >> scale),
                        "fault spec line " << line_no
                                           << ": straggler_begin needs a "
                                              "scale in (0,1)");
    return FaultPlan::straggler_begin(index, scale);
  }
  if (kind == "straggler_end") return FaultPlan::straggler_end(index);
  if (kind == "profiler_drop") return FaultPlan::profiler_drop(index);
  if (kind == "profiler_restore") return FaultPlan::profiler_restore(index);
  AUTOPIPE_EXPECT_MSG(false, "fault spec line " << line_no
                                                << ": unknown fault kind '"
                                                << kind << "'");
  throw contract_error("unreachable");
}

void validate_event(const FaultEvent& ev, std::size_t line_no,
                    std::size_t num_servers, std::size_t gpus_per_server) {
  const bool is_link = ev.kind == FaultEvent::Kind::kLinkDown ||
                       ev.kind == FaultEvent::Kind::kLinkUp;
  if (is_link) {
    AUTOPIPE_EXPECT_MSG(ev.index < num_servers,
                        "fault spec line " << line_no << ": server index "
                                           << ev.index
                                           << " out of range (cluster has "
                                           << num_servers << " servers)");
  } else {
    const std::size_t num_workers = num_servers * gpus_per_server;
    AUTOPIPE_EXPECT_MSG(ev.index < num_workers,
                        "fault spec line " << line_no << ": worker index "
                                           << ev.index
                                           << " out of range (cluster has "
                                           << num_workers << " workers)");
  }
}

FaultPlan parse_lines(std::istream& is, std::size_t num_servers,
                      std::size_t gpus_per_server) {
  FaultPlan plan;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    const std::size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    Seconds t = 0.0;
    FaultEvent ev = parse_event_line(line, line_no, t);
    validate_event(ev, line_no, num_servers, gpus_per_server);
    plan.at(t, ev);
  }
  return plan;
}

FaultPlan parse_random(const std::string& body, std::size_t num_servers,
                       std::size_t gpus_per_server) {
  ChaosSpec spec;
  std::istringstream is(body);
  std::string kv;
  std::size_t entry_no = 0;
  while (std::getline(is, kv, ',')) {
    ++entry_no;
    if (kv.empty()) continue;
    const std::size_t eq = kv.find('=');
    AUTOPIPE_EXPECT_MSG(eq != std::string::npos,
                        "fault spec: random entry " << entry_no
                            << ": expected key=value, got '" << kv << "'");
    const std::string key = kv.substr(0, eq);
    AUTOPIPE_EXPECT_MSG(!key.empty(), "fault spec: random entry "
                                          << entry_no << ": empty key in '"
                                          << kv << "'");
    const std::string raw = kv.substr(eq + 1);
    bool numeric = false;
    double value = 0.0;
    std::size_t used = 0;
    try {
      value = std::stod(raw, &used);
      numeric = used == raw.size();
    } catch (const std::invalid_argument&) {
    } catch (const std::out_of_range&) {
    }
    AUTOPIPE_EXPECT_MSG(numeric, "fault spec: random entry "
                                     << entry_no << ": field '" << key
                                     << "': bad number '" << raw << "'");
    if (key == "seed") {
      spec.seed = static_cast<std::uint64_t>(value);
    } else if (key == "start") {
      spec.start = value;
    } else if (key == "clear") {
      spec.clear_by = value;
    } else if (key == "gpus") {
      spec.gpu_preemptions = static_cast<std::size_t>(value);
    } else if (key == "links") {
      spec.link_failures = static_cast<std::size_t>(value);
    } else if (key == "flaps") {
      spec.link_flaps = static_cast<std::size_t>(value);
    } else if (key == "stragglers") {
      spec.stragglers = static_cast<std::size_t>(value);
    } else if (key == "profiler_drops") {
      spec.profiler_drops = static_cast<std::size_t>(value);
    } else if (key == "min_outage") {
      spec.min_outage = value;
    } else if (key == "max_outage") {
      spec.max_outage = value;
    } else {
      AUTOPIPE_EXPECT_MSG(false, "fault spec: random entry "
                                     << entry_no << ": unknown random key '"
                                     << key << "'");
    }
  }
  return random_plan(spec, num_servers, gpus_per_server);
}

}  // namespace

FaultPlan parse_spec(const std::string& spec, std::size_t num_servers,
                     std::size_t gpus_per_server) {
  AUTOPIPE_EXPECT_MSG(!spec.empty(), "empty fault spec");
  if (spec[0] == '@') {
    const std::string path = spec.substr(1);
    std::ifstream in(path);
    AUTOPIPE_EXPECT_MSG(in.good(),
                        "cannot read fault schedule file " << path);
    return parse_lines(in, num_servers, gpus_per_server);
  }
  if (spec.rfind("random:", 0) == 0) {
    return parse_random(spec.substr(7), num_servers, gpus_per_server);
  }
  // Inline schedule: ';' separates lines.
  std::string text = spec;
  std::replace(text.begin(), text.end(), ';', '\n');
  std::istringstream is(text);
  return parse_lines(is, num_servers, gpus_per_server);
}

}  // namespace autopipe::faults
