#include "faults/switch_fault_plan.hpp"

#include <algorithm>

#include "common/expect.hpp"

namespace autopipe::faults {

SwitchFaultPlan::SwitchFaultPlan(sim::Cluster& cluster,
                                 pipeline::PipelineExecutor& executor)
    : cluster_(cluster), executor_(executor) {
  observer_token_ = executor_.add_switch_observer(
      [this](const pipeline::PipelineExecutor::SwitchAttempt& a) {
        on_switch_event(a);
      });
}

SwitchFaultPlan::~SwitchFaultPlan() {
  executor_.remove_switch_observer(observer_token_);
}

SwitchFaultPlan& SwitchFaultPlan::add(SwitchCrashPoint point) {
  AUTOPIPE_EXPECT_MSG(point.kind == FaultEvent::Kind::kGpuDown ||
                          point.kind == FaultEvent::Kind::kLinkDown ||
                          point.kind == FaultEvent::Kind::kStragglerBegin ||
                          point.kind == FaultEvent::Kind::kProfilerDrop,
                      "crash points inject outages; recovery events are "
                      "derived from recover_after");
  points_.push_back(point);
  scheduled_.push_back(0);
  return *this;
}

std::size_t SwitchFaultPlan::pick_target(
    const pipeline::PipelineExecutor::SwitchAttempt& a,
    FaultEvent::Kind kind) const {
  // The victim must participate in the attempt, otherwise the fault cannot
  // interrupt the protocol; rotating on the attempt id keeps retries from
  // always hitting the same worker while staying seed-deterministic.
  const bool is_link = kind == FaultEvent::Kind::kLinkDown;
  if (is_link) {
    if (a.involved_servers.empty()) return 0;
    return a.involved_servers[static_cast<std::size_t>(a.id) %
                              a.involved_servers.size()];
  }
  if (a.involved_workers.empty()) return 0;
  return a.involved_workers[static_cast<std::size_t>(a.id) %
                            a.involved_workers.size()];
}

void SwitchFaultPlan::on_switch_event(
    const pipeline::PipelineExecutor::SwitchAttempt& a) {
  auto& sim = cluster_.simulator();
  for (std::size_t i = 0; i < points_.size(); ++i) {
    const SwitchCrashPoint& point = points_[i];
    if (point.phase != a.phase) continue;
    if (point.nth_attempt != 0 && point.nth_attempt != a.id) continue;
    if (point.max_shots != 0 && scheduled_[i] >= point.max_shots) continue;
    ++scheduled_[i];

    FaultEvent ev;
    ev.kind = point.kind;
    ev.index = pick_target(a, point.kind);
    if (point.kind == FaultEvent::Kind::kStragglerBegin)
      ev.value = point.straggler_scale;

    // Never mutate the cluster from inside the executor's phase
    // notification: route the fault through the simulator, so the abort
    // happens as its own event (and replays identically on any queue).
    const std::uint64_t attempt_id = a.id;
    const pipeline::SwitchPhase phase = a.phase;
    const Seconds recover_after = point.recover_after;
    sim.after(
        point.delay,
        [this, ev, attempt_id, phase, recover_after] {
          if (ev.kind == FaultEvent::Kind::kStragglerBegin) {
            // An overlapping straggler on the same worker would leave a
            // dangling recovery; skip the duplicate injection.
            if (std::find(active_stragglers_.begin(),
                          active_stragglers_.end(),
                          ev.index) != active_stragglers_.end())
              return;
            active_stragglers_.push_back(ev.index);
          }
          FaultPlan::apply(ev, cluster_);
          fired_.push_back(SwitchFaultShot{attempt_id, phase, ev,
                                           cluster_.simulator().now()});
          if (recover_after <= 0.0) return;
          FaultEvent recovery = ev;
          switch (ev.kind) {
            case FaultEvent::Kind::kGpuDown:
              recovery.kind = FaultEvent::Kind::kGpuUp;
              break;
            case FaultEvent::Kind::kLinkDown:
              recovery.kind = FaultEvent::Kind::kLinkUp;
              break;
            case FaultEvent::Kind::kStragglerBegin:
              recovery.kind = FaultEvent::Kind::kStragglerEnd;
              break;
            case FaultEvent::Kind::kProfilerDrop:
              recovery.kind = FaultEvent::Kind::kProfilerRestore;
              break;
            default:
              return;  // add() rejects non-outage kinds
          }
          cluster_.simulator().after(
              recover_after,
              [this, recovery] {
                if (recovery.kind == FaultEvent::Kind::kStragglerEnd) {
                  active_stragglers_.erase(
                      std::remove(active_stragglers_.begin(),
                                  active_stragglers_.end(), recovery.index),
                      active_stragglers_.end());
                }
                FaultPlan::apply(recovery, cluster_);
              },
              "switch_fault_recovery");
        },
        "switch_fault_injection");
  }
}

}  // namespace autopipe::faults
