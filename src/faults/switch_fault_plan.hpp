// Crash-point injection for the staged switch protocol. Where FaultPlan
// anchors faults in absolute simulated time, a SwitchFaultPlan anchors them
// at *protocol phase boundaries* of pipeline::PipelineExecutor's
// Prepare → Drain → Transfer → Commit state machine: it observes switch
// attempts and, when an armed crash point matches the attempt and phase,
// schedules a fault (GPU preemption, link failure, straggler, profiler
// dropout) against a deterministically chosen participant of that very
// attempt. This is what the bench/chaos_switch matrix drives: every
// (phase × fault kind) combination, byte-reproducible per seed.
//
// Injection is indirect on purpose: phase observers run synchronously
// inside the executor's switch path, so the plan never mutates the cluster
// from the callback — it schedules the fault through the simulator (with an
// optional extra delay), which also keeps heap/wheel event-queue parity.
#pragma once

#include <cstdint>
#include <vector>

#include "faults/fault_plan.hpp"
#include "pipeline/executor.hpp"

namespace autopipe::faults {

/// One armed crash point: fire `kind` when switch attempt `nth_attempt`
/// reaches `phase`.
struct SwitchCrashPoint {
  pipeline::SwitchPhase phase = pipeline::SwitchPhase::kTransfer;
  FaultEvent::Kind kind = FaultEvent::Kind::kGpuDown;
  /// 1-based attempt id to target; 0 fires on every matching attempt.
  std::uint64_t nth_attempt = 1;
  /// With nth_attempt == 0, cap the total injections from this point
  /// (0 = unlimited). Commit-phase outages need this: every recovery leads
  /// to a readmission switch whose own commit would re-trigger the point,
  /// and an uncapped loop never lets the run finish.
  std::uint64_t max_shots = 0;
  /// Extra simulated delay between the phase boundary and the fault.
  Seconds delay = 0.0;
  /// Outage duration; the paired recovery event (gpu_up / link_up /
  /// straggler_end / profiler_restore) is scheduled this much later.
  /// <= 0 injects the fault with no recovery.
  Seconds recover_after = 0.2;
  /// Throughput scale for kStragglerBegin points.
  double straggler_scale = 0.3;
};

/// Audit record of one injected fault.
struct SwitchFaultShot {
  std::uint64_t attempt_id = 0;
  pipeline::SwitchPhase phase = pipeline::SwitchPhase::kIdle;
  FaultEvent event;
  Seconds at = 0.0;  ///< simulated instant the fault applied
};

class SwitchFaultPlan {
 public:
  /// Registers a phase observer on `executor`; unregisters on destruction.
  /// Both references must outlive the plan.
  SwitchFaultPlan(sim::Cluster& cluster,
                  pipeline::PipelineExecutor& executor);
  ~SwitchFaultPlan();

  SwitchFaultPlan(const SwitchFaultPlan&) = delete;
  SwitchFaultPlan& operator=(const SwitchFaultPlan&) = delete;

  SwitchFaultPlan& add(SwitchCrashPoint point);

  /// Faults actually injected, in firing order.
  const std::vector<SwitchFaultShot>& fired() const { return fired_; }

 private:
  void on_switch_event(const pipeline::PipelineExecutor::SwitchAttempt& a);
  /// Deterministic victim among the attempt's participants.
  std::size_t pick_target(const pipeline::PipelineExecutor::SwitchAttempt& a,
                          FaultEvent::Kind kind) const;

  sim::Cluster& cluster_;
  pipeline::PipelineExecutor& executor_;
  std::uint64_t observer_token_ = 0;
  std::vector<SwitchCrashPoint> points_;
  /// Injections scheduled per point, parallel to points_ (max_shots cap).
  std::vector<std::uint64_t> scheduled_;
  std::vector<SwitchFaultShot> fired_;
  /// Stragglers currently applied (worker ids), so a recovery is never
  /// scheduled for a tenant that another point already removed.
  std::vector<std::size_t> active_stragglers_;
};

}  // namespace autopipe::faults
