// The model zoo: the four networks the paper trains. Image models use the
// paper's mini-batch sizes (AlexNet 256, ResNet50 128, VGG16 64) on
// 224x224x3 ImageNet-format inputs; BERT-48 (Fig 13) uses sequence length
// 128, hidden 1024, batch 256.
//
// Layer granularity matters for partition quality: ResNet50 is emitted at
// one unit per convolution (52 units), which is why the paper observes
// AutoPipe gaining most there — more layers give the planner more freedom.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "models/model.hpp"

namespace autopipe::models {

ModelSpec alexnet();
ModelSpec vgg16();
ModelSpec resnet50();
ModelSpec bert48();
/// Smaller variants for quick experiments and heterogeneous sweeps.
ModelSpec resnet18();
ModelSpec gpt2_small();

/// The three image models of Figs 3-10, in the paper's presentation order.
std::vector<ModelSpec> image_models();

/// Lookup by name ("alexnet", "vgg16", "resnet50", "bert48", "resnet18",
/// "gpt2").
ModelSpec model_by_name(const std::string& name);

/// Incremental builder that tracks spatial dimensions through a convnet so
/// per-layer FLOPs/activation sizes follow from the architecture table.
class ConvNetBuilder {
 public:
  ConvNetBuilder(std::string model_name, std::size_t channels,
                 std::size_t height, std::size_t width);

  /// 2-D convolution + fused bias/ReLU. Padding defaults to "same"
  /// (preserves spatial dims at stride 1).
  ConvNetBuilder& conv(const std::string& name, std::size_t out_channels,
                       std::size_t kernel, std::size_t stride = 1,
                       int pad = -1);

  /// Max pooling: no parameters, negligible FLOPs, shrinks the activation.
  ConvNetBuilder& maxpool(const std::string& name, std::size_t kernel,
                          std::size_t stride);

  /// Global average pooling to 1x1.
  ConvNetBuilder& global_avgpool(const std::string& name);

  /// Fully connected + fused bias/ReLU; flattens whatever precedes it.
  ConvNetBuilder& fc(const std::string& name, std::size_t out_features);

  ModelSpec build(std::size_t default_batch_size) &&;

  std::size_t channels() const { return channels_; }
  std::size_t height() const { return height_; }
  std::size_t width() const { return width_; }

 private:
  std::string model_name_;
  std::size_t channels_, height_, width_;
  std::vector<LayerSpec> layers_;
};

}  // namespace autopipe::models
