#include "models/zoo.hpp"

#include <utility>

#include "common/expect.hpp"

namespace autopipe::models {

namespace {
constexpr double kBytesPerScalar = 4.0;  // fp32 training

/// Backward work for a dense layer is roughly twice forward: one matmul for
/// input gradients plus one for weight gradients.
constexpr double kBwdOverFwd = 2.0;
}  // namespace

ConvNetBuilder::ConvNetBuilder(std::string model_name, std::size_t channels,
                               std::size_t height, std::size_t width)
    : model_name_(std::move(model_name)),
      channels_(channels),
      height_(height),
      width_(width) {
  AUTOPIPE_EXPECT(channels_ > 0 && height_ > 0 && width_ > 0);
}

ConvNetBuilder& ConvNetBuilder::conv(const std::string& name,
                                     std::size_t out_channels,
                                     std::size_t kernel, std::size_t stride,
                                     int pad) {
  AUTOPIPE_EXPECT(out_channels > 0 && kernel > 0 && stride > 0);
  const std::size_t p =
      pad >= 0 ? static_cast<std::size_t>(pad) : (kernel - 1) / 2;
  const std::size_t out_h = (height_ + 2 * p - kernel) / stride + 1;
  const std::size_t out_w = (width_ + 2 * p - kernel) / stride + 1;
  AUTOPIPE_EXPECT_MSG(out_h > 0 && out_w > 0,
                      model_name_ << "." << name << " collapses spatially");
  const double macs = static_cast<double>(kernel) * kernel * channels_ *
                      out_channels * out_h * out_w;
  const double params =
      (static_cast<double>(kernel) * kernel * channels_ + 1.0) * out_channels;
  LayerSpec layer;
  layer.name = name;
  layer.fwd_flops_per_sample = 2.0 * macs;
  layer.bwd_flops_per_sample = kBwdOverFwd * 2.0 * macs;
  layer.activation_bytes_per_sample =
      static_cast<double>(out_channels) * out_h * out_w * kBytesPerScalar;
  layer.param_bytes = params * kBytesPerScalar;
  layers_.push_back(std::move(layer));
  channels_ = out_channels;
  height_ = out_h;
  width_ = out_w;
  return *this;
}

ConvNetBuilder& ConvNetBuilder::maxpool(const std::string& name,
                                        std::size_t kernel,
                                        std::size_t stride) {
  AUTOPIPE_EXPECT(kernel > 0 && stride > 0);
  const std::size_t out_h = (height_ - kernel) / stride + 1;
  const std::size_t out_w = (width_ - kernel) / stride + 1;
  AUTOPIPE_EXPECT(out_h > 0 && out_w > 0);
  LayerSpec layer;
  layer.name = name;
  // One compare per window element per output.
  const double flops = static_cast<double>(kernel) * kernel * channels_ *
                       out_h * out_w;
  layer.fwd_flops_per_sample = flops;
  layer.bwd_flops_per_sample = flops;  // scatter of gradients
  layer.activation_bytes_per_sample =
      static_cast<double>(channels_) * out_h * out_w * kBytesPerScalar;
  layer.param_bytes = 0.0;
  layers_.push_back(std::move(layer));
  height_ = out_h;
  width_ = out_w;
  return *this;
}

ConvNetBuilder& ConvNetBuilder::global_avgpool(const std::string& name) {
  LayerSpec layer;
  layer.name = name;
  const double flops = static_cast<double>(channels_) * height_ * width_;
  layer.fwd_flops_per_sample = flops;
  layer.bwd_flops_per_sample = flops;
  layer.activation_bytes_per_sample =
      static_cast<double>(channels_) * kBytesPerScalar;
  layer.param_bytes = 0.0;
  layers_.push_back(std::move(layer));
  height_ = 1;
  width_ = 1;
  return *this;
}

ConvNetBuilder& ConvNetBuilder::fc(const std::string& name,
                                   std::size_t out_features) {
  AUTOPIPE_EXPECT(out_features > 0);
  const double in_features =
      static_cast<double>(channels_) * height_ * width_;
  LayerSpec layer;
  layer.name = name;
  layer.fwd_flops_per_sample = 2.0 * in_features * out_features;
  layer.bwd_flops_per_sample = kBwdOverFwd * 2.0 * in_features * out_features;
  layer.activation_bytes_per_sample =
      static_cast<double>(out_features) * kBytesPerScalar;
  layer.param_bytes = (in_features + 1.0) * out_features * kBytesPerScalar;
  layers_.push_back(std::move(layer));
  channels_ = out_features;
  height_ = 1;
  width_ = 1;
  return *this;
}

ModelSpec ConvNetBuilder::build(std::size_t default_batch_size) && {
  return ModelSpec(std::move(model_name_), default_batch_size,
                   std::move(layers_));
}

ModelSpec alexnet() {
  // Krizhevsky et al., NeurIPS'12; the single-tower variant. Mini-batch 256
  // per the paper's setup. Communication-light convs followed by enormous
  // fully-connected layers (fc6 alone is 38M parameters) — the classic
  // "partition the fcs away from the convs" PipeDream example.
  ConvNetBuilder b("alexnet", 3, 224, 224);
  b.conv("conv1", 96, 11, 4, 2)
      .maxpool("pool1", 3, 2)
      .conv("conv2", 256, 5, 1, 2)
      .maxpool("pool2", 3, 2)
      .conv("conv3", 384, 3)
      .conv("conv4", 384, 3)
      .conv("conv5", 256, 3)
      .maxpool("pool5", 3, 2)
      .fc("fc6", 4096)
      .fc("fc7", 4096)
      .fc("fc8", 1000);
  return std::move(b).build(256);
}

ModelSpec vgg16() {
  // Simonyan & Zisserman '14, configuration D. Mini-batch 64. The most
  // communication-intensive of the three image models: 138M parameters,
  // large early activations.
  ConvNetBuilder b("vgg16", 3, 224, 224);
  b.conv("conv1_1", 64, 3).conv("conv1_2", 64, 3).maxpool("pool1", 2, 2);
  b.conv("conv2_1", 128, 3).conv("conv2_2", 128, 3).maxpool("pool2", 2, 2);
  b.conv("conv3_1", 256, 3)
      .conv("conv3_2", 256, 3)
      .conv("conv3_3", 256, 3)
      .maxpool("pool3", 2, 2);
  b.conv("conv4_1", 512, 3)
      .conv("conv4_2", 512, 3)
      .conv("conv4_3", 512, 3)
      .maxpool("pool4", 2, 2);
  b.conv("conv5_1", 512, 3)
      .conv("conv5_2", 512, 3)
      .conv("conv5_3", 512, 3)
      .maxpool("pool5", 2, 2);
  b.fc("fc6", 4096).fc("fc7", 4096).fc("fc8", 1000);
  return std::move(b).build(64);
}

ModelSpec resnet50() {
  // He et al., CVPR'16. Mini-batch 128. Emitted at one unit per convolution
  // (52 units): the finer layer list is what lets AutoPipe's planner find
  // better splits here than on the 11/21-unit AlexNet/VGG16.
  ConvNetBuilder b("resnet50", 3, 224, 224);
  b.conv("conv1", 64, 7, 2, 3).maxpool("pool1", 3, 2);
  const std::size_t stage_blocks[4] = {3, 4, 6, 3};
  const std::size_t stage_width[4] = {64, 128, 256, 512};
  for (std::size_t s = 0; s < 4; ++s) {
    for (std::size_t blk = 0; blk < stage_blocks[s]; ++blk) {
      const std::string prefix =
          "res" + std::to_string(s + 2) + static_cast<char>('a' + blk);
      const std::size_t width = stage_width[s];
      const std::size_t stride = (s > 0 && blk == 0) ? 2 : 1;
      // Bottleneck: 1x1 reduce (carries the stage's stride, as in the
      // torchvision realization), 3x3, 1x1 expand. Projection shortcuts are
      // omitted (<2% of a stage's work) — the partitioner only needs
      // layer-cost *ratios* to be realistic.
      b.conv(prefix + ".conv1", width, 1, stride, 0);
      b.conv(prefix + ".conv2", width, 3, 1, 1);
      b.conv(prefix + ".conv3", width * 4, 1, 1, 0);
    }
  }
  b.global_avgpool("gap").fc("fc", 1000);
  return std::move(b).build(128);
}

ModelSpec bert48() {
  // A 48-layer BERT variant (the paper's "Bert-48" for Fig 13): hidden 1024,
  // 16 heads, sequence length 128, vocabulary 30522, mini-batch 256. Each
  // transformer block is one partitionable unit.
  const double h = 1024.0;
  const double seq = 128.0;
  const double vocab = 30522.0;
  std::vector<LayerSpec> layers;

  {
    LayerSpec embed;
    embed.name = "embedding";
    // Lookup + positional/segment add + layernorm: memory-bound; model as
    // a few ops per element.
    embed.fwd_flops_per_sample = 8.0 * seq * h;
    embed.bwd_flops_per_sample = 8.0 * seq * h;
    embed.activation_bytes_per_sample = seq * h * kBytesPerScalar;
    embed.param_bytes = (vocab + 512.0 + 2.0) * h * kBytesPerScalar;
    layers.push_back(std::move(embed));
  }
  for (int i = 0; i < 48; ++i) {
    LayerSpec blk;
    blk.name = "layer" + std::to_string(i);
    // QKV + output projections: 4h^2 per token; FFN: 8h^2 per token;
    // attention matmuls: 2*seq*h per token. MACs -> x2 FLOPs.
    const double macs_per_token = 12.0 * h * h + 2.0 * seq * h;
    blk.fwd_flops_per_sample = 2.0 * macs_per_token * seq;
    blk.bwd_flops_per_sample = kBwdOverFwd * 2.0 * macs_per_token * seq;
    blk.activation_bytes_per_sample = seq * h * kBytesPerScalar;
    blk.param_bytes = (12.0 * h * h + 13.0 * h) * kBytesPerScalar;
    layers.push_back(std::move(blk));
  }
  {
    LayerSpec head;
    head.name = "pooler";
    head.fwd_flops_per_sample = 2.0 * h * h;
    head.bwd_flops_per_sample = kBwdOverFwd * 2.0 * h * h;
    head.activation_bytes_per_sample = h * kBytesPerScalar;
    head.param_bytes = (h + 1.0) * h * kBytesPerScalar;
    layers.push_back(std::move(head));
  }
  return ModelSpec("bert48", 256, std::move(layers));
}

ModelSpec resnet18() {
  // He et al. '16, basic-block variant: conv1, 8 two-conv blocks, fc —
  // 11.7M parameters, 1.8 GMACs forward. One unit per convolution.
  ConvNetBuilder b("resnet18", 3, 224, 224);
  b.conv("conv1", 64, 7, 2, 3).maxpool("pool1", 3, 2);
  const std::size_t stage_width[4] = {64, 128, 256, 512};
  for (std::size_t s = 0; s < 4; ++s) {
    for (std::size_t blk = 0; blk < 2; ++blk) {
      const std::string prefix =
          "res" + std::to_string(s + 2) + static_cast<char>('a' + blk);
      const std::size_t stride = (s > 0 && blk == 0) ? 2 : 1;
      b.conv(prefix + ".conv1", stage_width[s], 3, stride, 1);
      b.conv(prefix + ".conv2", stage_width[s], 3, 1, 1);
    }
  }
  b.global_avgpool("gap").fc("fc", 1000);
  return std::move(b).build(128);
}

ModelSpec gpt2_small() {
  // GPT-2 small: 12 decoder blocks, hidden 768, 12 heads, context 1024,
  // vocabulary 50257. Decoder blocks are structurally uniform like BERT's,
  // with a larger context; the tied embedding dominates the parameters.
  const double h = 768.0;
  const double seq = 1024.0;
  const double vocab = 50257.0;
  std::vector<LayerSpec> layers;
  {
    LayerSpec embed;
    embed.name = "embedding";
    embed.fwd_flops_per_sample = 8.0 * seq * h;
    embed.bwd_flops_per_sample = 8.0 * seq * h;
    embed.activation_bytes_per_sample = seq * h * kBytesPerScalar;
    embed.param_bytes = (vocab + seq) * h * kBytesPerScalar;
    layers.push_back(std::move(embed));
  }
  for (int i = 0; i < 12; ++i) {
    LayerSpec blk;
    blk.name = "block" + std::to_string(i);
    const double macs_per_token = 12.0 * h * h + 2.0 * seq * h;
    blk.fwd_flops_per_sample = 2.0 * macs_per_token * seq;
    blk.bwd_flops_per_sample = kBwdOverFwd * 2.0 * macs_per_token * seq;
    blk.activation_bytes_per_sample = seq * h * kBytesPerScalar;
    blk.param_bytes = (12.0 * h * h + 13.0 * h) * kBytesPerScalar;
    layers.push_back(std::move(blk));
  }
  {
    LayerSpec head;
    head.name = "lm_head";  // tied weights: no extra parameters
    head.fwd_flops_per_sample = 2.0 * seq * h * vocab;
    head.bwd_flops_per_sample = kBwdOverFwd * 2.0 * seq * h * vocab;
    head.activation_bytes_per_sample = seq * vocab * kBytesPerScalar;
    head.param_bytes = 0.0;
    layers.push_back(std::move(head));
  }
  return ModelSpec("gpt2-small", 8, std::move(layers));
}

std::vector<ModelSpec> image_models() {
  return {resnet50(), vgg16(), alexnet()};
}

ModelSpec model_by_name(const std::string& name) {
  if (name == "alexnet") return alexnet();
  if (name == "vgg16") return vgg16();
  if (name == "resnet50") return resnet50();
  if (name == "bert48") return bert48();
  if (name == "resnet18") return resnet18();
  if (name == "gpt2" || name == "gpt2-small") return gpt2_small();
  AUTOPIPE_EXPECT_MSG(false, "unknown model: " << name);
  // Unreachable; AUTOPIPE_EXPECT_MSG throws.
  throw contract_error("unreachable");
}

}  // namespace autopipe::models
