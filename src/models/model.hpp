// Layer-level model descriptions. Work partitioning (PipeDream's DP and
// AutoPipe's neighbourhood search) operates purely on the Table-1 per-layer
// quantities — computation work, output activation size, input gradient
// size and parameter size — so a model here is exactly that list, derived
// from the real architecture shapes rather than measured on a GPU.
//
// Conventions: per-sample quantities (FLOPs, activation bytes) scale with
// the mini-batch size at profiling time; parameter bytes do not. The input
// gradient of layer i has the size of layer i-1's output activation, so it
// is not stored separately.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/units.hpp"

namespace autopipe::models {

struct LayerSpec {
  std::string name;
  /// Forward-pass work for one sample.
  Flops fwd_flops_per_sample = 0.0;
  /// Backward-pass work for one sample (≈ 2x forward for dense layers).
  Flops bwd_flops_per_sample = 0.0;
  /// Output activation size for one sample (the tensor sent downstream).
  Bytes activation_bytes_per_sample = 0.0;
  /// Trainable parameter + optimizer state footprint communicated on
  /// weight sync / stage migration.
  Bytes param_bytes = 0.0;
};

class ModelSpec {
 public:
  ModelSpec(std::string name, std::size_t default_batch_size,
            std::vector<LayerSpec> layers);

  const std::string& name() const { return name_; }
  std::size_t default_batch_size() const { return default_batch_size_; }
  std::size_t num_layers() const { return layers_.size(); }
  const LayerSpec& layer(std::size_t i) const;
  const std::vector<LayerSpec>& layers() const { return layers_; }

  // Table-1 quantities at a given batch size.

  /// O_i: activation bytes leaving layer i for one mini-batch.
  Bytes activation_bytes(std::size_t layer, std::size_t batch) const;
  /// G_i: gradient bytes entering layer i on the backward pass — the size
  /// of layer i's *input* activation. Layer 0 receives no gradient.
  Bytes gradient_bytes(std::size_t layer, std::size_t batch) const;
  /// P_i: parameter bytes of layer i.
  Bytes param_bytes(std::size_t layer) const;

  Flops fwd_flops(std::size_t layer, std::size_t batch) const;
  Flops bwd_flops(std::size_t layer, std::size_t batch) const;

  // Aggregates.
  Flops total_flops_per_sample() const;  // fwd + bwd
  Bytes total_param_bytes() const;
  /// Sum over contiguous range [first, last] inclusive.
  Flops range_fwd_flops(std::size_t first, std::size_t last,
                        std::size_t batch) const;
  Flops range_bwd_flops(std::size_t first, std::size_t last,
                        std::size_t batch) const;
  Bytes range_param_bytes(std::size_t first, std::size_t last) const;

 private:
  std::string name_;
  std::size_t default_batch_size_;
  std::vector<LayerSpec> layers_;
};

}  // namespace autopipe::models
