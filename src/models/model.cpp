#include "models/model.hpp"

#include <utility>

#include "common/expect.hpp"

namespace autopipe::models {

ModelSpec::ModelSpec(std::string name, std::size_t default_batch_size,
                     std::vector<LayerSpec> layers)
    : name_(std::move(name)),
      default_batch_size_(default_batch_size),
      layers_(std::move(layers)) {
  AUTOPIPE_EXPECT(default_batch_size_ >= 1);
  AUTOPIPE_EXPECT(!layers_.empty());
  for (const LayerSpec& l : layers_) {
    AUTOPIPE_EXPECT(l.fwd_flops_per_sample >= 0.0);
    AUTOPIPE_EXPECT(l.bwd_flops_per_sample >= 0.0);
    AUTOPIPE_EXPECT(l.activation_bytes_per_sample >= 0.0);
    AUTOPIPE_EXPECT(l.param_bytes >= 0.0);
  }
}

const LayerSpec& ModelSpec::layer(std::size_t i) const {
  AUTOPIPE_EXPECT(i < layers_.size());
  return layers_[i];
}

Bytes ModelSpec::activation_bytes(std::size_t layer, std::size_t batch) const {
  AUTOPIPE_EXPECT(layer < layers_.size());
  return layers_[layer].activation_bytes_per_sample *
         static_cast<double>(batch);
}

Bytes ModelSpec::gradient_bytes(std::size_t layer, std::size_t batch) const {
  AUTOPIPE_EXPECT(layer < layers_.size());
  if (layer == 0) return 0.0;  // no gradient flows into the input images
  return activation_bytes(layer - 1, batch);
}

Bytes ModelSpec::param_bytes(std::size_t layer) const {
  AUTOPIPE_EXPECT(layer < layers_.size());
  return layers_[layer].param_bytes;
}

Flops ModelSpec::fwd_flops(std::size_t layer, std::size_t batch) const {
  AUTOPIPE_EXPECT(layer < layers_.size());
  return layers_[layer].fwd_flops_per_sample * static_cast<double>(batch);
}

Flops ModelSpec::bwd_flops(std::size_t layer, std::size_t batch) const {
  AUTOPIPE_EXPECT(layer < layers_.size());
  return layers_[layer].bwd_flops_per_sample * static_cast<double>(batch);
}

Flops ModelSpec::total_flops_per_sample() const {
  Flops total = 0.0;
  for (const LayerSpec& l : layers_)
    total += l.fwd_flops_per_sample + l.bwd_flops_per_sample;
  return total;
}

Bytes ModelSpec::total_param_bytes() const {
  Bytes total = 0.0;
  for (const LayerSpec& l : layers_) total += l.param_bytes;
  return total;
}

Flops ModelSpec::range_fwd_flops(std::size_t first, std::size_t last,
                                 std::size_t batch) const {
  AUTOPIPE_EXPECT(first <= last && last < layers_.size());
  Flops total = 0.0;
  for (std::size_t i = first; i <= last; ++i) total += fwd_flops(i, batch);
  return total;
}

Flops ModelSpec::range_bwd_flops(std::size_t first, std::size_t last,
                                 std::size_t batch) const {
  AUTOPIPE_EXPECT(first <= last && last < layers_.size());
  Flops total = 0.0;
  for (std::size_t i = first; i <= last; ++i) total += bwd_flops(i, batch);
  return total;
}

Bytes ModelSpec::range_param_bytes(std::size_t first, std::size_t last) const {
  AUTOPIPE_EXPECT(first <= last && last < layers_.size());
  Bytes total = 0.0;
  for (std::size_t i = first; i <= last; ++i) total += layers_[i].param_bytes;
  return total;
}

}  // namespace autopipe::models
