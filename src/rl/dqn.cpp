#include "rl/dqn.hpp"

#include <algorithm>
#include <utility>

#include "common/expect.hpp"
#include "common/profile.hpp"
#include "nn/loss.hpp"

namespace autopipe::rl {

namespace {

std::vector<std::size_t> widths(const DqnConfig& c) {
  std::vector<std::size_t> w;
  w.push_back(c.state_dim);
  for (std::size_t h : c.hidden) w.push_back(h);
  w.push_back(c.num_actions);
  return w;
}

nn::Matrix to_row(const std::vector<double>& v) {
  nn::Matrix m(1, v.size());
  for (std::size_t i = 0; i < v.size(); ++i) m.at(0, i) = v[i];
  return m;
}

}  // namespace

DqnAgent::DqnAgent(DqnConfig config, std::uint64_t seed)
    : config_(std::move(config)),
      rng_(seed),
      online_([&] {
        Rng init(seed ^ 0x9e3779b97f4a7c15ull);
        return nn::Mlp(widths(config_), nn::Activation::kRelu,
                       nn::Activation::kIdentity, init);
      }()),
      target_(online_),
      optimizer_(online_.parameters(), config_.learning_rate),
      buffer_(config_.replay_capacity),
      epsilon_(config_.epsilon_start) {
  AUTOPIPE_EXPECT(config_.state_dim > 0);
  AUTOPIPE_EXPECT(config_.num_actions >= 2);
}

int DqnAgent::act(const std::vector<double>& state, bool explore) {
  return decide(state, explore).action;
}

DqnAgent::DecisionInfo DqnAgent::decide(const std::vector<double>& state,
                                        bool explore) {
  PROF_SPAN("arbiter/decide");
  AUTOPIPE_EXPECT(state.size() == config_.state_dim);
  DecisionInfo info;
  info.q = q_values(state);  // pure forward pass: no RNG consumed
  if (explore && rng_.chance(epsilon_)) {
    info.explored = true;
    info.action = static_cast<int>(rng_.uniform_int(
        0, static_cast<std::int64_t>(config_.num_actions) - 1));
    return info;
  }
  info.action = static_cast<int>(
      std::max_element(info.q.begin(), info.q.end()) - info.q.begin());
  return info;
}

std::vector<double> DqnAgent::q_values(const std::vector<double>& state) {
  AUTOPIPE_EXPECT(state.size() == config_.state_dim);
  const nn::Matrix out = online_.forward(to_row(state));
  std::vector<double> q(config_.num_actions);
  for (std::size_t a = 0; a < config_.num_actions; ++a) q[a] = out.at(0, a);
  return q;
}

void DqnAgent::observe(Transition t) {
  AUTOPIPE_EXPECT(t.state.size() == config_.state_dim);
  AUTOPIPE_EXPECT(t.next_state.size() == config_.state_dim);
  AUTOPIPE_EXPECT(t.action >= 0 &&
                  t.action < static_cast<int>(config_.num_actions));
  buffer_.add(std::move(t));
  ++steps_;
  epsilon_ = std::max(config_.epsilon_end, epsilon_ * config_.epsilon_decay);
  if (buffer_.size() >= config_.warmup_steps) learn();
  if (steps_ % config_.target_update_interval == 0) target_ = online_;
}

void DqnAgent::learn() {
  const auto batch = buffer_.sample(rng_, config_.batch_size);
  const std::size_t B = batch.size();

  nn::Matrix states(B, config_.state_dim);
  nn::Matrix next_states(B, config_.state_dim);
  for (std::size_t i = 0; i < B; ++i) {
    for (std::size_t j = 0; j < config_.state_dim; ++j) {
      states.at(i, j) = batch[i].state[j];
      next_states.at(i, j) = batch[i].next_state[j];
    }
  }

  // TD targets from the frozen target network.
  const nn::Matrix next_q = target_.forward(next_states);
  std::vector<double> targets(B);
  for (std::size_t i = 0; i < B; ++i) {
    double best = next_q.at(i, 0);
    for (std::size_t a = 1; a < config_.num_actions; ++a)
      best = std::max(best, next_q.at(i, a));
    targets[i] = batch[i].reward +
                 (batch[i].terminal ? 0.0 : config_.gamma * best);
  }

  online_.zero_grad();
  nn::Matrix q = online_.forward(states);
  // Only the taken action's Q participates in the loss; build prediction
  // and target matrices that agree elsewhere.
  nn::Matrix pred(B, 1);
  nn::Matrix target(B, 1);
  for (std::size_t i = 0; i < B; ++i) {
    pred.at(i, 0) = q.at(i, static_cast<std::size_t>(batch[i].action));
    target.at(i, 0) = targets[i];
  }
  const nn::LossResult loss = nn::huber_loss(pred, target);
  nn::Matrix dq(B, config_.num_actions);
  for (std::size_t i = 0; i < B; ++i)
    dq.at(i, static_cast<std::size_t>(batch[i].action)) = loss.grad.at(i, 0);
  online_.backward(dq);
  optimizer_.step();
}

void DqnAgent::begin_online_adaptation(double lr_scale) {
  AUTOPIPE_EXPECT(lr_scale > 0.0 && lr_scale <= 1.0);
  optimizer_.set_learning_rate(config_.learning_rate * lr_scale);
  epsilon_ = config_.epsilon_end;
  config_.epsilon_start = config_.epsilon_end;
}

void DqnAgent::save(std::ostream& os) const { online_.save(os); }

void DqnAgent::load(std::istream& is) {
  online_.load(is);
  target_ = online_;
}

}  // namespace autopipe::rl
