#include "rl/replay_buffer.hpp"

#include <utility>

#include "common/expect.hpp"

namespace autopipe::rl {

ReplayBuffer::ReplayBuffer(std::size_t capacity) : capacity_(capacity) {
  AUTOPIPE_EXPECT(capacity_ > 0);
  items_.reserve(capacity_);
}

void ReplayBuffer::add(Transition t) {
  if (items_.size() < capacity_) {
    items_.push_back(std::move(t));
  } else {
    items_[next_] = std::move(t);
    next_ = (next_ + 1) % capacity_;
  }
}

std::vector<Transition> ReplayBuffer::sample(Rng& rng, std::size_t n) const {
  AUTOPIPE_EXPECT(!items_.empty());
  std::vector<Transition> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto idx = static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(items_.size()) - 1));
    out.push_back(items_[idx]);
  }
  return out;
}

const Transition& ReplayBuffer::at(std::size_t i) const {
  AUTOPIPE_EXPECT(i < items_.size());
  return items_[i];
}

void ReplayBuffer::clear() {
  items_.clear();
  next_ = 0;
}

}  // namespace autopipe::rl
