// DQN-style value learner. The paper's arbiter (§4.3) is a fully-connected
// net with 32- and 16-neuron hidden layers whose output is the boolean
// switch decision; we realize it as a two-action Q-network trained with
// Huber TD loss, a target network and epsilon-greedy exploration — offline
// first (simulated episodes), then adapted online with a reduced learning
// rate (the paper's transfer-learning step).
#pragma once

#include <cstddef>
#include <iosfwd>
#include <vector>

#include "common/rng.hpp"
#include "nn/mlp.hpp"
#include "nn/optimizer.hpp"
#include "rl/replay_buffer.hpp"

namespace autopipe::rl {

struct DqnConfig {
  std::size_t state_dim = 0;
  std::size_t num_actions = 2;
  std::vector<std::size_t> hidden = {32, 16};  // the paper's architecture
  double learning_rate = 1e-3;
  double gamma = 0.6;  // switch decisions pay off within a few iterations
  double epsilon_start = 1.0;
  double epsilon_end = 0.05;
  /// Multiplicative epsilon decay applied per environment step.
  double epsilon_decay = 0.995;
  std::size_t replay_capacity = 4096;
  std::size_t batch_size = 32;
  std::size_t target_update_interval = 100;
  /// Steps collected before learning starts.
  std::size_t warmup_steps = 64;
};

class DqnAgent {
 public:
  DqnAgent(DqnConfig config, std::uint64_t seed);

  /// Epsilon-greedy action; set explore=false for deployment.
  int act(const std::vector<double>& state, bool explore = true);

  /// act() plus the evidence behind it, for the decision ledger: the online
  /// net's Q-values and whether the epsilon-greedy exploration branch fired.
  /// Consumes the RNG identically to act(), so recording a run's decisions
  /// does not perturb it.
  struct DecisionInfo {
    int action = 0;
    bool explored = false;
    std::vector<double> q;
  };
  DecisionInfo decide(const std::vector<double>& state, bool explore = true);

  /// Record a transition and (past warmup) run one learning step.
  void observe(Transition t);

  std::vector<double> q_values(const std::vector<double>& state);

  double epsilon() const { return epsilon_; }
  std::size_t steps() const { return steps_; }
  const DqnConfig& config() const { return config_; }

  /// Online-adaptation mode: shrink the learning rate and freeze epsilon
  /// low, so deployment-time updates refine rather than destabilize.
  void begin_online_adaptation(double lr_scale = 0.1);

  void save(std::ostream& os) const;
  void load(std::istream& is);

 private:
  void learn();

  DqnConfig config_;
  Rng rng_;
  nn::Mlp online_;
  nn::Mlp target_;
  nn::Adam optimizer_;
  ReplayBuffer buffer_;
  double epsilon_;
  std::size_t steps_ = 0;
};

}  // namespace autopipe::rl
