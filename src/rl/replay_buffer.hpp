// Fixed-capacity experience replay for the switch arbiter.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.hpp"

namespace autopipe::rl {

struct Transition {
  std::vector<double> state;
  int action = 0;
  double reward = 0.0;
  std::vector<double> next_state;
  bool terminal = false;
};

class ReplayBuffer {
 public:
  explicit ReplayBuffer(std::size_t capacity);

  void add(Transition t);
  std::size_t size() const { return items_.size(); }
  std::size_t capacity() const { return capacity_; }
  bool empty() const { return items_.empty(); }

  /// Sample `n` transitions uniformly with replacement.
  std::vector<Transition> sample(Rng& rng, std::size_t n) const;

  const Transition& at(std::size_t i) const;
  void clear();

 private:
  std::size_t capacity_;
  std::size_t next_ = 0;  // ring cursor once full
  std::vector<Transition> items_;
};

}  // namespace autopipe::rl
