#include "autopipe/controller.hpp"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstring>

#include "common/expect.hpp"
#include "common/log.hpp"
#include "common/profile.hpp"
#include "partition/analytic_eval.hpp"
#include "partition/neighborhood.hpp"
#include "partition/pipedream_planner.hpp"
#include "partition/rebalance.hpp"

namespace autopipe::core {

namespace {

/// Partition::to_string() with the spaces removed, so the string fits the
/// ledger's space-separated key=value lines.
std::string compact_partition(const partition::Partition& p) {
  std::string s = p.to_string();
  s.erase(std::remove(s.begin(), s.end(), ' '), s.end());
  return s;
}

}  // namespace

AutoPipeController::AutoPipeController(sim::Cluster& cluster,
                                       pipeline::PipelineExecutor& executor,
                                       ControllerConfig config,
                                       MetaNetwork* meta, rl::DqnAgent* agent,
                                       FeatureEncoder encoder)
    : cluster_(cluster),
      executor_(executor),
      config_(config),
      meta_(meta),
      agent_(agent),
      encoder_(std::move(encoder)),
      profiler_(executor.model(), executor.batch_size()) {
  AUTOPIPE_EXPECT_MSG(
      agent_ != nullptr ||
          config_.arbiter_mode != ControllerConfig::ArbiterMode::kRl,
      "RL arbiter mode requires an agent");
  if (config_.use_meta_network) {
    AUTOPIPE_EXPECT_MSG(meta_ != nullptr,
                        "use_meta_network requires a MetaNetwork");
  }
  set_owned_workers(config_.owned_workers);
  ledger().set_run_info(static_cast<int>(executor_.batch_size()),
                        static_cast<int>(cluster_.num_workers()),
                        executor_.model().name());
  // Observe the executor's staged switch protocol: validation arms on
  // Commit, fault aborts feed the retry/backoff/abandonment policy.
  switch_observer_token_ = executor_.add_switch_observer(
      [this](const pipeline::PipelineExecutor::SwitchAttempt& a) {
        on_switch_event(a);
      });
}

AutoPipeController::~AutoPipeController() {
  executor_.remove_switch_observer(switch_observer_token_);
}

void AutoPipeController::set_owned_workers(
    std::vector<sim::WorkerId> workers) {
  if (workers.empty()) {
    // The historical single-tenant contract: the whole cluster is ours.
    owned_.resize(cluster_.num_workers());
    for (sim::WorkerId w = 0; w < cluster_.num_workers(); ++w) owned_[w] = w;
    return;
  }
  std::sort(workers.begin(), workers.end());
  workers.erase(std::unique(workers.begin(), workers.end()), workers.end());
  for (sim::WorkerId w : workers)
    AUTOPIPE_EXPECT_MSG(w < cluster_.num_workers(),
                        "owned worker " << w << " outside cluster of "
                                        << cluster_.num_workers());
  owned_ = std::move(workers);
}

ProfileSnapshot AutoPipeController::scoped_snapshot(
    const ProfileSnapshot& snapshot) const {
  if (!job_scoped()) return snapshot;
  ProfileSnapshot scoped = snapshot;
  scoped.num_workers = owned_.size();
  scoped.worker_bandwidth.clear();
  scoped.worker_speed.clear();
  scoped.fp_time.clear();
  scoped.bp_time.clear();
  for (sim::WorkerId w : owned_) {
    if (w < snapshot.worker_bandwidth.size())
      scoped.worker_bandwidth.push_back(snapshot.worker_bandwidth[w]);
    if (w < snapshot.worker_speed.size())
      scoped.worker_speed.push_back(snapshot.worker_speed[w]);
    if (w < snapshot.fp_time.size())
      scoped.fp_time.push_back(snapshot.fp_time[w]);
    if (w < snapshot.bp_time.size())
      scoped.bp_time.push_back(snapshot.bp_time[w]);
  }
  return scoped;
}

void AutoPipeController::attach() {
  executor_.set_iteration_callback(
      [this](std::size_t iters) { on_iteration(iters); });
  arm_watchdog();
}

void AutoPipeController::on_iteration(std::size_t completed_iterations) {
  // Progress bookkeeping for the stall watchdog: a completed iteration is
  // the definition of forward progress.
  const Seconds now_s = cluster_.simulator().now();
  if (last_iteration_at_ >= 0.0 && now_s > last_iteration_at_) {
    const double period = now_s - last_iteration_at_;
    ema_period_ =
        ema_period_ > 0.0 ? 0.25 * period + 0.75 * ema_period_ : period;
  }
  last_iteration_at_ = now_s;
  last_progress_iterations_ = completed_iterations;
  last_progress_time_ = now_s;
  if (wedged_) {
    wedged_ = false;
    recovery_attempts_ = 0;
    next_recovery_at_ = 0.0;
    recovery_given_up_ = false;
    cluster_.simulator().metrics().add("controller.recoveries");
    if (cluster_.simulator().tracer().enabled()) {
      cluster_.simulator().tracer().instant(
          trace::Category::kFault, "pipeline_recovered", now_s,
          trace::kPidControl, 1,
          {trace::arg("iterations", completed_iterations)});
    }
    arm_watchdog();  // the give-up path stops the ticks; progress restarts them
  }

  ProfileSnapshot snapshot = profiler_.snapshot(executor_, cluster_);

  // Profiler dropouts: a muted worker's readings would simply be absent in
  // a real deployment, so the controller holds that worker's last good
  // sample instead of consuming whatever the counters happen to report.
  if (held_speed_.size() != snapshot.worker_speed.size()) {
    held_bw_ = snapshot.worker_bandwidth;
    held_speed_ = snapshot.worker_speed;
    held_fp_ = snapshot.fp_time;
    held_bp_ = snapshot.bp_time;
  }
  for (sim::WorkerId w = 0; w < snapshot.num_workers; ++w) {
    if (cluster_.profiler_muted(w)) {
      snapshot.worker_bandwidth[w] = held_bw_[w];
      snapshot.worker_speed[w] = held_speed_[w];
      snapshot.fp_time[w] = held_fp_[w];
      snapshot.bp_time[w] = held_bp_[w];
    } else {
      held_bw_[w] = snapshot.worker_bandwidth[w];
      held_speed_[w] = snapshot.worker_speed[w];
      held_fp_[w] = snapshot.fp_time[w];
      held_bp_[w] = snapshot.bp_time[w];
    }
  }

  if (static_features_.empty())
    static_features_ = encoder_.static_features(snapshot);
  dynamic_history_.push_back(encoder_.dynamic_features(snapshot));
  while (dynamic_history_.size() > config_.history_window)
    dynamic_history_.pop_front();

  settle_pending_reward(snapshot);

  if (snapshot.iteration_time > 0.0) {
    recent_period_.push_back(snapshot.iteration_time);
    while (recent_period_.size() > 2 * config_.validation_window)
      recent_period_.pop_front();
  }

  // Online adaptation: the measured speed of the *current* partition is a
  // free labelled sample for the meta-network.
  if (meta_ && config_.online_adaptation && snapshot.iteration_time > 0.0) {
    SpeedSample sample;
    sample.dynamic_seq.assign(dynamic_history_.begin(),
                              dynamic_history_.end());
    sample.static_feat = static_features_;
    sample.partition_feat = encoder_.partition_features(
        executor_.current_partition(), snapshot.num_layers);
    sample.target = encoder_.normalize_throughput(
        static_cast<double>(executor_.batch_size()) /
        snapshot.iteration_time);
    adaptation_buffer_.push_back(std::move(sample));
    if (adaptation_buffer_.size() >= config_.adaptation_batch) {
      meta_->train_batch(adaptation_buffer_);
      adaptation_buffer_.clear();
    }
  }

  // Change detection runs on link-level bandwidth (what NIC/switch counters
  // report) rather than per-flow achieved rates: the latter shift with the
  // job's own traffic pattern and would alias as phantom resource events.
  ProfileSnapshot monitor_view = snapshot;
  if (held_nic_bw_.size() != monitor_view.worker_bandwidth.size()) {
    held_nic_bw_.resize(monitor_view.worker_bandwidth.size());
    for (sim::WorkerId w = 0; w < monitor_view.num_workers; ++w)
      held_nic_bw_[w] = cluster_.nic_bandwidth(cluster_.server_of(w));
  }
  for (sim::WorkerId w = 0; w < monitor_view.num_workers; ++w) {
    if (cluster_.profiler_muted(w)) {
      monitor_view.worker_bandwidth[w] = held_nic_bw_[w];
    } else {
      held_nic_bw_[w] = cluster_.nic_bandwidth(cluster_.server_of(w));
      monitor_view.worker_bandwidth[w] = held_nic_bw_[w];
    }
  }
  // Job-scoped controllers watch only their owned workers: a sibling job's
  // bandwidth shift must not trigger a replan here, while a change in the
  // owned population itself (an arbiter grant or revocation) reports as
  // "worker population changed" and does.
  if (job_scoped()) monitor_view = scoped_snapshot(monitor_view);
  const ResourceChange change = monitor_.update(monitor_view);
  if (change.changed) {
    ++stats_.changes_detected;
    cluster_.simulator().metrics().add("controller.changes");
    if (cluster_.simulator().tracer().enabled()) {
      cluster_.simulator().tracer().instant(
          trace::Category::kControl, "change_detected",
          cluster_.simulator().now(), trace::kPidControl, 1,
          {trace::arg("what", change.description)});
    }
    // A shifted environment invalidates earlier measured rejections and
    // resets the exploration backoff. Open ledger probes were measuring the
    // old regime; close them out rather than mix measurements across it.
    rejected_.clear();
    consecutive_reverts_ = 0;
    cooldown_until_ = 0;
    supersede_probes("regime_change");
    LOG_DEBUG("resource change detected: " << change.description);
  }

  if (executor_.switch_in_progress()) return;
  advance_probes();

  // Re-admission: a worker excluded by an emergency re-plan has come back —
  // fold it in with a full-width plan over every reachable worker.
  if (!excluded_workers_.empty() && !wedged_) {
    const bool any_back = std::any_of(
        excluded_workers_.begin(), excluded_workers_.end(),
        [this](sim::WorkerId w) { return cluster_.worker_reachable(w); });
    if (any_back && maybe_readmit(snapshot)) return;
  }

  // While any worker is unreachable — or its measured bandwidth/speed has
  // not yet recovered to a positive value after an outage — the normal
  // planning paths are meaningless: planners and the analytic model assume
  // every worker is usable, and a zero-bandwidth snapshot entry would trip
  // their contracts. The watchdog's emergency path owns reconfiguration
  // until the topology heals; once a returned worker is re-admitted
  // (above) the regular optimization loop resumes.
  for (sim::WorkerId w : owned_) {
    if (!cluster_.worker_reachable(w)) return;
    if (w < snapshot.num_workers && (snapshot.worker_bandwidth[w] <= 0.0 ||
                                     snapshot.worker_speed[w] <= 0.0))
      return;
  }

  // Measured-feedback validation of the last switch: compare mean
  // seconds/iteration over a post-switch window against the pre-switch
  // baseline, on elapsed simulated time (robust to completion bursts).
  if (validation_ && config_.validate_switches &&
      completed_iterations > validation_->switch_iteration) {
    if (validation_->window_start < 0.0) {
      validation_->window_start = cluster_.simulator().now();
      if (cluster_.simulator().tracer().enabled()) {
        cluster_.simulator().tracer().instant(
            trace::Category::kControl, "validation_start",
            cluster_.simulator().now(), trace::kPidControl, 1,
            {trace::arg("round",
                        validation_->ledger_id ? *validation_->ledger_id : 0),
             trace::arg("period_before", validation_->period_before)});
      }
    } else {
      ++validation_->samples;
      if (validation_->samples >= config_.validation_window) {
        const double after_period =
            (cluster_.simulator().now() - validation_->window_start) /
            static_cast<double>(validation_->samples);
        const bool regressed =
            after_period > validation_->period_before *
                               (1.0 - config_.regression_tolerance);
        if (cluster_.simulator().tracer().enabled()) {
          cluster_.simulator().tracer().instant(
              trace::Category::kControl, "validation_end",
              cluster_.simulator().now(), trace::kPidControl, 1,
              {trace::arg("round",
                          validation_->ledger_id ? *validation_->ledger_id
                                                 : 0),
               trace::arg("period_after", after_period),
               trace::arg("verdict", regressed ? "regressed" : "validated")});
        }
        // Keep the new partition only if it is measurably better; an
        // equal-or-worse measurement sends it back (and into rejected_).
        if (regressed) {
          LOG_DEBUG("switch regressed (period "
                    << validation_->period_before << " -> " << after_period
                    << "); reverting");
          if (!partition_reachable(validation_->previous)) {
            // A fault took out part of the old placement: nothing to revert
            // to. Keep the current partition and move on.
            resolve_validation_record(
                trace::OutcomeStatus::kExecuted,
                static_cast<double>(executor_.batch_size()) / after_period,
                static_cast<int>(validation_->samples), "revert_unreachable");
            validation_.reset();
            return;
          }
          rejected_.insert(executor_.current_partition().to_string());
          // The revert is itself a staged switch: track it so a fault
          // mid-revert retries with backoff (but never re-validates it).
          drop_tracked_switch("revert");
          tracked_switch_ = TrackedSwitch(validation_->previous,
                                          executor_.current_partition());
          if (!executor_.request_switch(validation_->previous,
                                        config_.switch_mode,
                                        validation_->ledger_id
                                            ? *validation_->ledger_id
                                            : 0)) {
            tracked_switch_.reset();
            ++retry_epoch_;
            return;  // switch engine busy: retry the revert next iteration
          }
          resolve_validation_record(
              trace::OutcomeStatus::kReverted,
              static_cast<double>(executor_.batch_size()) / after_period,
              static_cast<int>(validation_->samples), "regressed");
          supersede_probes("revert");
          cluster_.simulator().metrics().add("controller.reverts");
          if (cluster_.simulator().tracer().enabled()) {
            cluster_.simulator().tracer().instant(
                trace::Category::kControl, "revert",
                cluster_.simulator().now(), trace::kPidControl, 1,
                {trace::arg("period_before", validation_->period_before),
                 trace::arg("period_after", after_period)});
          }
          consecutive_reverts_ = std::min<std::size_t>(
              consecutive_reverts_ + 1, config_.max_revert_backoff_shift);
          cooldown_until_ = completed_iterations +
                            revert_backoff_iterations(consecutive_reverts_);
        } else {
          consecutive_reverts_ = 0;  // the switch held up under measurement
          resolve_validation_record(
              trace::OutcomeStatus::kExecuted,
              static_cast<double>(executor_.batch_size()) / after_period,
              static_cast<int>(validation_->samples), "validated");
        }
        validation_.reset();
        return;
      }
    }
  }

  // An in-progress gradual migration takes priority over fresh decisions;
  // intermediate steps are not individually validated (they may transit
  // through worse configurations on the way to the target).
  if (target_) {
    resolve_validation_record(trace::OutcomeStatus::kSuperseded, -1.0, 0,
                              "migration");
    validation_.reset();
    if (pursue_target()) return;
  }

  if (completed_iterations < config_.min_history_iterations) return;
  if (!change.changed && completed_iterations < cooldown_until_) return;
  const bool periodic =
      config_.decision_interval > 0 &&
      completed_iterations % config_.decision_interval == 0;
  if (!change.changed && !periodic) return;
  if (dynamic_history_.size() < 2) return;  // nothing to learn from yet

  evaluate_and_decide(snapshot, change.changed);
}

double AutoPipeController::predict_speed(
    const ProfileSnapshot& snapshot, const partition::Partition& candidate) {
  PROF_SPAN_AGG("predictor/infer");
  if (meta_ && config_.use_meta_network) {
    const std::vector<std::vector<double>> seq(dynamic_history_.begin(),
                                               dynamic_history_.end());
    const double normalized = meta_->predict(
        seq, static_features_,
        encoder_.partition_features(candidate, snapshot.num_layers));
    return encoder_.denormalize_throughput(normalized);
  }
  // Analytic integrated model on the profiled environment.
  const auto env = profiler_.environment(snapshot,
                                         executor_.config().framework,
                                         executor_.config().sync_scheme);
  return partition::analytic_throughput(executor_.model(), candidate, env,
                                        executor_.batch_size());
}

double AutoPipeController::baseline_period() const {
  AUTOPIPE_EXPECT(!recent_period_.empty());
  std::vector<double> sorted(recent_period_.begin(), recent_period_.end());
  std::sort(sorted.begin(), sorted.end());
  return sorted[sorted.size() / 2];  // median: robust to fill-phase spikes
}

std::size_t AutoPipeController::revert_backoff_iterations(
    std::size_t reverts) const {
  // Hard clamp below the word width so even a pathological configuration
  // (max_revert_backoff_shift >= 64) cannot shift into undefined behaviour;
  // the config ceiling is what bounds the pause in practice.
  const std::size_t shift = std::min<std::size_t>(
      std::min(reverts, config_.max_revert_backoff_shift), 48);
  return config_.revert_cooldown << shift;
}

namespace {
/// Layers whose hosting worker set differs between two partitions — the
/// migration distance a switch sequence must close.
std::size_t partition_distance(const partition::Partition& a,
                               const partition::Partition& b) {
  std::size_t d = 0;
  for (std::size_t l = 0; l < a.num_layers(); ++l) {
    if (a.stage(a.stage_of_layer(l)).workers !=
        b.stage(b.stage_of_layer(l)).workers)
      ++d;
  }
  return d;
}
}  // namespace

std::pair<partition::Partition, double> AutoPipeController::replan(
    const ProfileSnapshot& snapshot) {
  PROF_SPAN("planner/replan");
  const auto env = profiler_.environment(snapshot,
                                         executor_.config().framework,
                                         executor_.config().sync_scheme);
  // The DP planner plans over a dense [0, N) worker space. A job-scoped
  // controller plans over its owned subset (dense via scoped_snapshot) and
  // maps the result back onto its real cluster worker ids; the descent and
  // rebalance below evaluate with the full-cluster env, which indexes by
  // real id and never leaves the owned set (two_worker_candidates only
  // permutes workers already in the partition).
  partition::PlanResult plan = [&] {
    if (!job_scoped()) {
      partition::PipeDreamPlanner planner(
          executor_.model(), env, executor_.batch_size(),
          partition::PipeDreamPlanner::Mode::kCurrentEnvironment);
      return planner.plan(env.num_workers());
    }
    const ProfileSnapshot scoped = scoped_snapshot(snapshot);
    const auto scoped_env = profiler_.environment(
        scoped, executor_.config().framework, executor_.config().sync_scheme);
    partition::PipeDreamPlanner planner(
        executor_.model(), scoped_env, executor_.batch_size(),
        partition::PipeDreamPlanner::Mode::kCurrentEnvironment);
    partition::PlanResult scoped_plan = planner.plan(scoped_env.num_workers());
    scoped_plan.partition =
        partition::remap_workers(scoped_plan.partition, owned_);
    return scoped_plan;
  }();
  // Refine with a short neighbourhood descent under the integrated model.
  Seconds best = partition::analytic_batch_time(executor_.model(),
                                                plan.partition, env,
                                                executor_.batch_size());
  for (int round = 0; round < 20; ++round) {
    bool improved = false;
    for (const auto& candidate :
         partition::two_worker_candidates(plan.partition)) {
      const Seconds t = partition::analytic_batch_time(
          executor_.model(), candidate.partition, env, executor_.batch_size());
      if (t < best * 0.999) {
        best = t;
        plan.partition = candidate.partition;
        improved = true;
      }
    }
    if (!improved) break;
  }
  // Heterogeneity-aware alternative: keep the current stage structure but
  // re-draw the layer boundaries in proportion to the profiled speeds. This
  // escapes the multi-slow-stage local optimum the count-based DP and the
  // two-worker neighbourhood both miss.
  partition::Partition rebalanced = partition::speed_proportional_rebalance(
      executor_.model(), executor_.current_partition(), env,
      executor_.batch_size());
  const Seconds rebalanced_time = partition::analytic_batch_time(
      executor_.model(), rebalanced, env, executor_.batch_size());
  if (rebalanced_time < best) {
    best = rebalanced_time;
    plan.partition = std::move(rebalanced);
  }
  return {std::move(plan.partition),
          static_cast<double>(executor_.batch_size()) / best};
}

bool AutoPipeController::pursue_target() {
  if (!target_) return false;
  const partition::Partition& current = executor_.current_partition();
  if (current == *target_ || target_steps_ > 4 * current.num_layers()) {
    target_.reset();
    return false;
  }
  // Step to the neighbour closest to the target.
  const auto candidates = partition::two_worker_candidates(current);
  const std::size_t current_distance = partition_distance(current, *target_);
  const partition::Candidate* best = nullptr;
  std::size_t best_distance = current_distance;
  for (const auto& candidate : candidates) {
    const std::size_t d = partition_distance(candidate.partition, *target_);
    if (d < best_distance) {
      best_distance = d;
      best = &candidate;
    }
  }
  if (best == nullptr) {
    target_.reset();  // no move closes the gap: abandon the target
    return false;
  }
  ++target_steps_;
  // Intermediate migration steps are tracked (fault aborts retry them) but
  // never validated: they may transit through worse configurations.
  drop_tracked_switch("new_decision");
  tracked_switch_ = TrackedSwitch(best->partition, current);
  if (executor_.request_switch(best->partition, config_.switch_mode,
                               target_round_)) {
    ++stats_.switches_requested;
    last_switch_iteration_ = executor_.completed_iterations();
  } else if (tracked_switch_) {
    tracked_switch_.reset();
    ++retry_epoch_;
  }
  return true;
}

void AutoPipeController::evaluate_and_decide(const ProfileSnapshot& snapshot,
                                             bool after_change) {
  PROF_SPAN("planner/decide_round");
  const auto wall0 = std::chrono::steady_clock::now();
  ++stats_.decisions;

  const partition::Partition& current = executor_.current_partition();
  const double current_speed = predict_speed(snapshot, current);

  // One ledger record per planning round. Only simulated-time quantities
  // land in it — never the wall-clock timings below — so same-seed runs
  // serialize byte-identical ledgers.
  const bool ledger_on = ledger().enabled();
  trace::DecisionRecord rec;
  const auto init_record = [&] {
    rec = trace::DecisionRecord{};
    rec.job = config_.job_id;
    rec.time = cluster_.simulator().now();
    rec.iteration = executor_.completed_iterations();
    rec.kind = "neighborhood";
    rec.digest = snapshot_digest(snapshot);
    rec.num_workers = static_cast<int>(snapshot.num_workers);
    rec.iteration_time = snapshot.iteration_time;
    rec.current = compact_partition(current);
    rec.current_pred = current_speed;
  };
  // Re-plan adoption is this round's single candidate; fill before the
  // switch request so `current` is still the pre-switch partition.
  const auto fill_replan = [&](const partition::Partition& plan,
                               double plan_speed) {
    rec.kind = "replan";
    const auto env = profiler_.environment(snapshot,
                                           executor_.config().framework,
                                           executor_.config().sync_scheme);
    const SwitchCostEstimate cost = analytic_switch_cost(
        executor_.model(), current, plan, env,
        snapshot.iteration_time > 0.0 ? snapshot.iteration_time : 0.1,
        partition::optimal_in_flight(current),
        executor_.config().switch_overhead_per_layer);
    trace::CandidateScore cs;
    cs.partition = compact_partition(plan);
    cs.predicted_speed = plan_speed;
    cs.cost_fine = cost.fine_grained;
    cs.cost_stw = cost.stop_the_world;
    rec.action = trace::DecisionAction::kSwitch;
    rec.target = cs.partition;
    rec.chosen_pred = plan_speed;
    rec.best_pred = plan_speed;
    rec.cost_seconds = cost_for_mode(
        cost, config_.switch_mode ==
                  pipeline::PipelineExecutor::SwitchMode::kFineGrained);
    rec.arbiter = "replan";
    rec.candidates.push_back(std::move(cs));
  };
  if (ledger_on) init_record();

  // On a real environment shift, the two-worker neighbourhood may be too
  // local: consult the full re-plan first.
  if (after_change && config_.replan_on_change) {
    auto [plan, plan_speed] = replan(snapshot);
    if (plan_speed > current_speed * (1.0 + config_.replan_gain_threshold) &&
        !(plan == current) && !rejected_.count(plan.to_string()) &&
        partition_reachable(plan)) {
      if (config_.gradual_migration) {
        LOG_DEBUG("migration target " << plan.to_string());
        if (ledger_on) {
          fill_replan(plan, plan_speed);
          supersede_probes("new_decision");
          const std::uint64_t id = ledger().add(std::move(rec));
          probes_.push_back(LedgerProbe{
              id, true, executor_.completed_iterations(), -1.0, 0});
          target_round_ = id;
        } else {
          target_round_ = 0;
        }
        target_ = std::move(plan);
        target_steps_ = 0;
        pursue_target();
        return;
      }
      LOG_DEBUG("re-plan adoption: " << plan.to_string() << " (predicted "
                                     << current_speed << " -> " << plan_speed
                                     << ")");
      if (ledger_on) fill_replan(plan, plan_speed);
      // Arm the tracked switch (and its ledger record) *before* the request:
      // an empty-pipeline attempt can run Prepare → Commit synchronously,
      // and the Commit observer is what arms the validation window.
      const bool arm_validation =
          config_.validate_switches && !recent_period_.empty();
      drop_tracked_switch("new_decision");
      tracked_switch_ =
          TrackedSwitch(plan, current,
                        arm_validation ? baseline_period() : 0.0,
                        arm_validation);
      if (ledger_on) {
        resolve_validation_record(trace::OutcomeStatus::kSuperseded, -1.0, 0,
                                  "new_decision");
        supersede_probes("new_decision");
        tracked_switch_->ledger_id = ledger().add(std::move(rec));
      }
      if (executor_.request_switch(plan, config_.switch_mode,
                                   tracked_switch_->ledger_id
                                       ? *tracked_switch_->ledger_id
                                       : 0)) {
        cluster_.simulator().metrics().add("controller.replans");
        if (cluster_.simulator().tracer().enabled()) {
          cluster_.simulator().tracer().instant(
              trace::Category::kControl, "replan_adopt",
              cluster_.simulator().now(), trace::kPidControl, 1,
              {trace::arg("predicted_current", current_speed),
               trace::arg("predicted_plan", plan_speed)});
        }
        ++stats_.switches_requested;
        last_switch_iteration_ = executor_.completed_iterations();
        return;
      }
      // Switch engine busy: the verdict never took effect. Fall through to
      // the neighbourhood round with a fresh record.
      if (tracked_switch_) {
        if (tracked_switch_->ledger_id) {
          ledger_resolve(*tracked_switch_->ledger_id,
                         trace::OutcomeStatus::kSuperseded, -1.0, 0,
                         "engine_busy");
        }
        tracked_switch_.reset();
        ++retry_epoch_;
      }
      if (ledger_on) init_record();
    }
  }

  auto candidates = partition::two_worker_candidates(current);
  stats_.candidates_evaluated += candidates.size();

  // Per-candidate switch costs are estimated only for the ledger; the
  // decision itself still gates on the best candidate's estimate below.
  std::optional<partition::EnvironmentView> ledger_env;
  if (ledger_on)
    ledger_env = profiler_.environment(snapshot, executor_.config().framework,
                                       executor_.config().sync_scheme);

  double best_speed = 0.0;
  const partition::Candidate* best = nullptr;
  for (const auto& candidate : candidates) {
    const bool skipped =
        !partition_reachable(candidate.partition) ||  // faulted destination
        (config_.validate_switches &&
         rejected_.count(candidate.partition.to_string()) >
             0);  // measured worse than predicted earlier in this regime
    if (skipped) {
      if (ledger_on) {
        trace::CandidateScore cs;
        cs.partition = compact_partition(candidate.partition);
        cs.skipped = true;
        rec.candidates.push_back(std::move(cs));
      }
      continue;
    }
    const double speed = predict_speed(snapshot, candidate.partition);
    if (ledger_on) {
      const SwitchCostEstimate cost = analytic_switch_cost(
          executor_.model(), current, candidate.partition, *ledger_env,
          snapshot.iteration_time > 0.0 ? snapshot.iteration_time : 0.1,
          partition::optimal_in_flight(current),
          executor_.config().switch_overhead_per_layer);
      trace::CandidateScore cs;
      cs.partition = compact_partition(candidate.partition);
      cs.predicted_speed = speed;
      cs.cost_fine = cost.fine_grained;
      cs.cost_stw = cost.stop_the_world;
      rec.candidates.push_back(std::move(cs));
    }
    if (cluster_.simulator().tracer().enabled()) {
      cluster_.simulator().tracer().instant(
          trace::Category::kControl, "predict", cluster_.simulator().now(),
          trace::kPidControl, 1, {trace::arg("speed", speed)});
    }
    if (best == nullptr || speed > best_speed) {
      best_speed = speed;
      best = &candidate;
    }
  }

  const auto wall1 = std::chrono::steady_clock::now();
  stats_.last_decision_wall_seconds =
      std::chrono::duration<double>(wall1 - wall0).count();
  stats_.total_decision_wall_seconds += stats_.last_decision_wall_seconds;

  // Non-RL arbiters only consider candidates above the gain floor. The RL
  // arbiter sees every best-of-neighbourhood proposal — learning to decline
  // unprofitable switches is precisely its job, and declined proposals
  // still produce reward observations.
  const bool below_floor =
      best == nullptr ||
      best_speed <= current_speed * (1.0 + config_.candidate_gain_floor);
  if (below_floor &&
      (config_.arbiter_mode != ControllerConfig::ArbiterMode::kRl ||
       best == nullptr)) {
    if (ledger_on) {
      // No candidate cleared the gain floor: an implicit hold, recorded so
      // the round still joins to a realized (status-quo) speed.
      rec.action = trace::DecisionAction::kHold;
      rec.chosen_pred = current_speed;
      rec.best_pred = best != nullptr ? best_speed : current_speed;
      rec.arbiter = "floor";
      const std::uint64_t id = ledger().add(std::move(rec));
      probes_.push_back(
          LedgerProbe{id, false, executor_.completed_iterations(), -1.0, 0});
    }
    return;
  }

  // Cost of adopting the best candidate.
  const auto env = profiler_.environment(snapshot,
                                         executor_.config().framework,
                                         executor_.config().sync_scheme);
  const SwitchCostEstimate cost = analytic_switch_cost(
      executor_.model(), current, best->partition, env,
      snapshot.iteration_time > 0.0 ? snapshot.iteration_time : 0.1,
      partition::optimal_in_flight(current),
      executor_.config().switch_overhead_per_layer);
  const Seconds cost_seconds =
      config_.switch_mode ==
              pipeline::PipelineExecutor::SwitchMode::kFineGrained
          ? cost.fine_grained
          : cost.stop_the_world;

  // Arbiter: is the predicted gain worth the cost?
  int action = 0;
  std::vector<double> state = encoder_.arbiter_state(
      snapshot, current_speed, best_speed, cost_seconds,
      static_cast<double>(executor_.completed_iterations() -
                          last_switch_iteration_));
  switch (config_.arbiter_mode) {
    case ControllerConfig::ArbiterMode::kRl: {
      rl::DqnAgent::DecisionInfo info =
          agent_->decide(state, config_.arbiter_explore);
      action = info.action;
      if (ledger_on) {
        rec.q_values = std::move(info.q);
        rec.explored = info.explored;
      }
      break;
    }
    case ControllerConfig::ArbiterMode::kAlwaysSwitch:
      action = 1;
      break;
    case ControllerConfig::ArbiterMode::kNeverSwitch:
      action = 0;
      break;
    case ControllerConfig::ArbiterMode::kThreshold: {
      const bool gain_ok =
          best_speed > current_speed * (1.0 + config_.threshold_gain);
      // Cost-aware gate: the migration must pay back within the horizon.
      const double gain_per_iteration =
          (best_speed / std::max(current_speed, 1e-9) - 1.0) *
          std::max(snapshot.iteration_time, 1e-6);
      const bool payback_ok =
          cost_seconds <
          gain_per_iteration * config_.payback_horizon_iterations;
      action = (gain_ok && payback_ok) ? 1 : 0;
      break;
    }
  }

  cluster_.simulator().metrics().add(action == 1 ? "arbiter.accept"
                                                 : "arbiter.reject");
  if (cluster_.simulator().tracer().enabled()) {
    cluster_.simulator().tracer().instant(
        trace::Category::kControl,
        action == 1 ? "arbiter_accept" : "arbiter_reject",
        cluster_.simulator().now(), trace::kPidControl, 1,
        {trace::arg("current_speed", current_speed),
         trace::arg("best_speed", best_speed),
         trace::arg("cost_seconds", cost_seconds),
         trace::arg("candidates", candidates.size())});
  }

  if (agent_) {
    // Normalized switching cost: the training speed lost to the switch,
    // expressed in the same units as the speed reward (§4.3's "normalized
    // switching cost"): current normalized speed times the cost expressed
    // in iterations.
    const double cost_normalized =
        action == 1 ? encoder_.normalize_throughput(
                          static_cast<double>(executor_.batch_size()) /
                          std::max(snapshot.iteration_time, 1e-6)) *
                          (cost_seconds /
                           std::max(snapshot.iteration_time, 1e-6))
                    : 0.0;
    pending_ = PendingDecision{std::move(state), action, cost_normalized};
  }

  if (ledger_on) {
    rec.action = action == 1 ? trace::DecisionAction::kSwitch
                             : trace::DecisionAction::kHold;
    if (action == 1) rec.target = compact_partition(best->partition);
    rec.chosen_pred = action == 1 ? best_speed : current_speed;
    rec.best_pred = best_speed;
    rec.cost_seconds = cost_seconds;
    switch (config_.arbiter_mode) {
      case ControllerConfig::ArbiterMode::kRl:
        rec.arbiter = "rl";
        break;
      case ControllerConfig::ArbiterMode::kAlwaysSwitch:
        rec.arbiter = "always";
        break;
      case ControllerConfig::ArbiterMode::kNeverSwitch:
        rec.arbiter = "never";
        break;
      case ControllerConfig::ArbiterMode::kThreshold:
        rec.arbiter = "threshold";
        break;
    }
  }

  if (action == 1) {
    // Tracked switch (and ledger record) armed before the request so a
    // synchronous Commit finds them; validation arms only when the staged
    // protocol commits, never for an attempt that aborts mid-flight.
    const bool arm_validation =
        config_.validate_switches && !recent_period_.empty();
    drop_tracked_switch("new_decision");
    tracked_switch_ =
        TrackedSwitch(best->partition, executor_.current_partition(),
                      arm_validation ? baseline_period() : 0.0,
                      arm_validation);
    if (ledger_on) {
      resolve_validation_record(trace::OutcomeStatus::kSuperseded, -1.0, 0,
                                "new_decision");
      // An adopted switch opens a new regime: earlier probes stop here.
      supersede_probes("new_decision");
      tracked_switch_->ledger_id = ledger().add(std::move(rec));
    }
    if (executor_.request_switch(best->partition, config_.switch_mode,
                                 tracked_switch_->ledger_id
                                     ? *tracked_switch_->ledger_id
                                     : 0)) {
      ++stats_.switches_requested;
      last_switch_iteration_ = executor_.completed_iterations();
      LOG_DEBUG("switching to " << best->partition.to_string()
                                << " (predicted " << current_speed << " -> "
                                << best_speed << " samples/s)");
    } else if (tracked_switch_) {
      // The switch engine was busy: the verdict never took effect.
      if (tracked_switch_->ledger_id) {
        ledger_resolve(*tracked_switch_->ledger_id,
                       trace::OutcomeStatus::kSuperseded, -1.0, 0,
                       "engine_busy");
      }
      tracked_switch_.reset();
      ++retry_epoch_;
    }
  } else if (ledger_on) {
    const std::uint64_t id = ledger().add(std::move(rec));
    probes_.push_back(
        LedgerProbe{id, false, executor_.completed_iterations(), -1.0, 0});
  }
}

// ---------------------------------------------------------------------------
// Stall watchdog and emergency recovery
// ---------------------------------------------------------------------------

bool AutoPipeController::partition_reachable(
    const partition::Partition& p) const {
  for (sim::WorkerId w : p.all_workers())
    if (!cluster_.worker_reachable(w)) return false;
  return true;
}

void AutoPipeController::arm_watchdog() {
  if (!config_.enable_watchdog || watchdog_armed_ || recovery_given_up_)
    return;
  watchdog_armed_ = true;
  const Seconds interval =
      std::max(config_.watchdog_min_interval, ema_period_);
  cluster_.simulator().after(
      interval, [this] { watchdog_tick(); }, "watchdog");
}

void AutoPipeController::watchdog_tick() {
  watchdog_armed_ = false;
  auto& sim = cluster_.simulator();
  const Seconds now = sim.now();
  if (!executor_.running()) {
    // Either training finished (stop ticking so the event queue can drain)
    // or run() has not started yet (keep waiting, without counting the idle
    // span as a stall).
    if (watchdog_saw_running_ || executor_.completed_iterations() > 0) return;
    last_progress_time_ = now;
    arm_watchdog();
    return;
  }
  watchdog_saw_running_ = true;

  const std::size_t iters = executor_.completed_iterations();
  if (iters != last_progress_iterations_) {
    last_progress_iterations_ = iters;
    last_progress_time_ = now;
  } else {
    // The EMA yardstick; a stop-the-world drain legitimately spans many
    // iteration periods, so in-progress switches get the fill grace.
    Seconds threshold =
        ema_period_ > 0.0
            ? std::max(config_.watchdog_factor * ema_period_,
                       config_.watchdog_min_interval)
            : config_.watchdog_fill_grace;
    if (executor_.switch_in_progress())
      threshold = std::max(threshold, config_.watchdog_fill_grace);
    const Seconds stall = now - last_progress_time_;
    if (stall > threshold) {
      bool worker_down = false;
      for (sim::WorkerId w : owned_)
        if (!cluster_.worker_reachable(w)) { worker_down = true; break; }
      // With every worker reachable, a slow patch is not a fault: only a
      // stall past the hard grace bound (and outside a switch, whose drain
      // is deterministic) triggers recovery.
      const bool hard_stall = ema_period_ > 0.0 &&
                              !executor_.switch_in_progress() &&
                              stall > std::max(threshold,
                                               config_.watchdog_fill_grace);
      if (worker_down || hard_stall) {
        if (!wedged_) {
          wedged_ = true;
          ++stats_.wedges_detected;
          sim.metrics().add("controller.wedges");
          if (sim.tracer().enabled()) {
            sim.tracer().instant(
                trace::Category::kFault, "pipeline_wedged", now,
                trace::kPidControl, 1,
                {trace::arg("stalled_seconds", stall),
                 trace::arg("iterations", iters)});
          }
        }
        if (now >= next_recovery_at_) attempt_recovery(now);
      }
    }
  }
  arm_watchdog();
}

void AutoPipeController::attempt_recovery(Seconds now) {
  auto& sim = cluster_.simulator();
  if (recovery_attempts_ >= config_.recovery_max_retries) {
    if (!recovery_given_up_) {
      recovery_given_up_ = true;
      ++stats_.recovery_giveups;
      sim.metrics().add("controller.recovery_giveups");
      if (sim.tracer().enabled()) {
        sim.tracer().instant(trace::Category::kFault, "watchdog_giveup", now,
                             trace::kPidControl, 1,
                             {trace::arg("attempts", recovery_attempts_)});
      }
    }
    return;
  }
  ++recovery_attempts_;
  next_recovery_at_ =
      now + config_.watchdog_min_interval *
                std::pow(config_.recovery_backoff_base,
                         static_cast<double>(recovery_attempts_));

  std::vector<sim::WorkerId> alive;
  std::vector<sim::WorkerId> dead;
  for (sim::WorkerId w : owned_)
    (cluster_.worker_reachable(w) ? alive : dead).push_back(w);
  ProfileSnapshot snapshot = profiler_.snapshot(executor_, cluster_);
  if (alive.size() > snapshot.num_layers) alive.resize(snapshot.num_layers);
  if (alive.empty()) return;  // nowhere to land; back off and retry

  std::optional<partition::Partition> plan;
  try {
    const auto env = profiler_.environment(snapshot,
                                           executor_.config().framework,
                                           executor_.config().sync_scheme);
    plan = partition::speed_proportional_rebalance(
        executor_.model(),
        partition::Partition::even_split(snapshot.num_layers, alive), env,
        executor_.batch_size());
  } catch (const std::exception&) {
    // A half-transitioned environment (e.g. a link that dropped between the
    // reachability scan and the snapshot) can violate planner contracts;
    // treat it like any other failed attempt and let the backoff retry.
    return;
  }
  // A fault racing this call (e.g. a second preemption mid-migration) makes
  // the adopt fail; the backoff schedule retries with a fresh alive set.
  if (!executor_.emergency_adopt(std::move(*plan))) return;
  ++stats_.emergency_replans;
  sim.metrics().add("controller.emergency_replans");
  excluded_workers_ = std::move(dead);
  // The emergency plan invalidates every piece of steady-state decision
  // context (an in-flight switch was already aborted through the staged
  // protocol by emergency_adopt; its tracked state resolved there).
  drop_tracked_switch("fault");
  resolve_validation_record(trace::OutcomeStatus::kSuperseded, -1.0, 0,
                            "fault");
  supersede_probes("fault");
  validation_.reset();
  target_.reset();
  rejected_.clear();
  cooldown_until_ = 0;
  consecutive_reverts_ = 0;
  pending_.reset();
  monitor_.reset();
}

bool AutoPipeController::maybe_readmit(const ProfileSnapshot& snapshot) {
  std::vector<sim::WorkerId> alive;
  for (sim::WorkerId w : owned_)
    if (cluster_.worker_reachable(w)) alive.push_back(w);
  if (alive.size() > snapshot.num_layers) alive.resize(snapshot.num_layers);
  if (alive.empty()) return false;

  std::optional<partition::Partition> plan;
  try {
    const auto env = profiler_.environment(snapshot,
                                           executor_.config().framework,
                                           executor_.config().sync_scheme);
    plan = partition::speed_proportional_rebalance(
        executor_.model(),
        partition::Partition::even_split(snapshot.num_layers, alive), env,
        executor_.batch_size());
  } catch (const std::exception&) {
    return false;  // environment still unsettled; retry next iteration
  }
  const auto drop_returned = [this] {
    excluded_workers_.erase(
        std::remove_if(
            excluded_workers_.begin(), excluded_workers_.end(),
            [this](sim::WorkerId w) { return cluster_.worker_reachable(w); }),
        excluded_workers_.end());
  };
  if (*plan == executor_.current_partition()) {
    drop_returned();
    return false;
  }
  drop_tracked_switch("readmit");
  tracked_switch_ =
      TrackedSwitch(*plan, executor_.current_partition());
  if (!executor_.request_switch(*plan, config_.switch_mode)) {
    tracked_switch_.reset();
    ++retry_epoch_;
    return false;
  }
  ++stats_.readmissions;
  ++stats_.switches_requested;
  last_switch_iteration_ = executor_.completed_iterations();
  cluster_.simulator().metrics().add("controller.readmissions");
  if (cluster_.simulator().tracer().enabled()) {
    cluster_.simulator().tracer().instant(
        trace::Category::kFault, "worker_readmit",
        cluster_.simulator().now(), trace::kPidControl, 1,
        {trace::arg("workers", alive.size())});
  }
  drop_returned();
  resolve_validation_record(trace::OutcomeStatus::kSuperseded, -1.0, 0,
                            "readmit");
  supersede_probes("readmit");
  validation_.reset();
  rejected_.clear();
  return true;
}

// ---------------------------------------------------------------------------
// Interruptible-switch tracking: retry / backoff / abandonment
// ---------------------------------------------------------------------------

namespace {

trace::OutcomeStatus aborted_outcome(
    pipeline::SwitchPhase phase) {
  using SwitchPhase = pipeline::SwitchPhase;
  switch (phase) {
    case SwitchPhase::kDrain:
      return trace::OutcomeStatus::kAbortedDrain;
    case SwitchPhase::kTransfer:
      return trace::OutcomeStatus::kAbortedTransfer;
    default:
      return trace::OutcomeStatus::kAbortedPrepare;
  }
}

}  // namespace

void AutoPipeController::on_switch_event(
    const pipeline::PipelineExecutor::SwitchAttempt& a) {
  using SwitchPhase = pipeline::SwitchPhase;
  auto& sim = cluster_.simulator();
  if (a.phase == SwitchPhase::kCommit) {
    if (!tracked_switch_) return;  // e.g. an emergency adoption's own switch
    TrackedSwitch tracked = std::move(*tracked_switch_);
    tracked_switch_.reset();
    ++retry_epoch_;
    // Validation arms only now: an attempt that aborted never changed the
    // running configuration, so there is nothing to measure or revert.
    if (tracked.arm_validation) {
      validation_ =
          Validation{std::move(tracked.previous), tracked.period_before,
                     executor_.completed_iterations(), -1.0, 0,
                     tracked.ledger_id};
    } else if (tracked.ledger_id) {
      probes_.push_back(LedgerProbe{*tracked.ledger_id, true,
                                    executor_.completed_iterations(), -1.0,
                                    0});
    }
    return;
  }
  if (a.phase != SwitchPhase::kAborted) return;

  // Switch-cost accounting for aborted work: the attempt consumed wall
  // time (and, mid-Transfer, network bytes — counted by the executor as
  // switch.rollback_bytes) without delivering a new configuration.
  sim.metrics().add("controller.aborted_switch_seconds",
                    sim.now() - a.requested_at);

  if (a.abort_reason == "emergency") {
    // attempt_recovery owns the aftermath; the decided target is moot.
    if (tracked_switch_) {
      if (tracked_switch_->ledger_id) {
        ledger_resolve(*tracked_switch_->ledger_id,
                       trace::OutcomeStatus::kSuperseded, -1.0, 0, "fault");
      }
      tracked_switch_.reset();
      ++retry_epoch_;
    }
    return;
  }

  if (a.abort_reason == "tenant_contention" ||
      a.abort_reason == "job_finished") {
    // Terminal aborts from the cluster co-tenancy layer. "tenant_contention":
    // the arbiter denied this job the contested worker — final until the
    // ownership map changes again, so the retry policy must NOT adopt the
    // attempt (re-requesting the same target would route batches through
    // another tenant's GPU). "job_finished": the run target was reached with
    // a switch still staged; retrying would reconfigure onto workers the job
    // has already released.
    if (tracked_switch_) {
      if (tracked_switch_->ledger_id) {
        ledger_resolve(*tracked_switch_->ledger_id,
                       aborted_outcome(a.aborted_in), -1.0, 0,
                       a.abort_reason);
      }
      if (a.abort_reason == "tenant_contention")
        rejected_.insert(tracked_switch_->target.to_string());
      tracked_switch_.reset();
      ++retry_epoch_;
    }
    return;
  }

  if (!tracked_switch_) {
    // An attempt this controller did not issue (harness- or test-driven):
    // adopt it so the retry policy covers every aborted switch.
    if (!a.target) return;
    tracked_switch_ =
        TrackedSwitch(*a.target, executor_.current_partition());
  }
  tracked_switch_->last_abort_phase = a.aborted_in;
  schedule_switch_retry();
}

void AutoPipeController::schedule_switch_retry() {
  AUTOPIPE_EXPECT(tracked_switch_.has_value());
  TrackedSwitch& t = *tracked_switch_;
  if (t.retry_scheduled) return;
  if (t.attempts >= config_.switch_retry_max) {
    abandon_tracked_switch();
    return;
  }
  t.retry_scheduled = true;
  const Seconds delay =
      config_.switch_retry_base_interval *
      std::pow(config_.switch_retry_backoff,
               static_cast<double>(t.attempts - 1));
  const std::uint64_t epoch = retry_epoch_;
  cluster_.simulator().after(
      delay,
      [this, epoch] {
        if (epoch != retry_epoch_ || !tracked_switch_) return;
        TrackedSwitch& tr = *tracked_switch_;
        tr.retry_scheduled = false;
        if (tr.target == executor_.current_partition()) {
          // Someone (a rejoin repair, another decision) already landed the
          // configuration; nothing left to retry.
          drop_tracked_switch("target_reached");
          return;
        }
        if (executor_.switch_in_progress() ||
            !partition_reachable(tr.target)) {
          // Engine busy or the target still routes through an unreachable
          // worker: burn one attempt and back off again, so a permanently
          // dead worker leads to abandonment rather than eternal polling.
          ++tr.attempts;
          schedule_switch_retry();
          return;
        }
        ++tr.attempts;
        if (executor_.request_switch(
                tr.target, config_.switch_mode,
                tr.ledger_id ? *tr.ledger_id : 0)) {
          ++stats_.switch_retries;
          auto& sim = cluster_.simulator();
          sim.metrics().add("switch.retries");
          if (sim.tracer().enabled()) {
            sim.tracer().instant(trace::Category::kControl, "switch_retry",
                                 sim.now(), trace::kPidControl, 1,
                                 {trace::arg("attempt", tr.attempts)});
          }
        } else {
          schedule_switch_retry();
        }
      },
      "switch_retry");
}

void AutoPipeController::abandon_tracked_switch() {
  TrackedSwitch t = std::move(*tracked_switch_);
  tracked_switch_.reset();
  ++retry_epoch_;
  ++stats_.switch_abandonments;
  auto& sim = cluster_.simulator();
  sim.metrics().add("switch.abandoned");
  if (sim.tracer().enabled()) {
    sim.tracer().instant(
        trace::Category::kControl, "switch_abandon", sim.now(),
        trace::kPidControl, 1,
        {trace::arg("attempts", t.attempts),
         trace::arg("phase",
                    pipeline::switch_phase_name(t.last_abort_phase))});
  }
  if (t.ledger_id) {
    ledger_resolve(*t.ledger_id, aborted_outcome(t.last_abort_phase), -1.0,
                   0, "abandoned");
  }
  // Repeated fault pressure on this exact move: skip it until the
  // environment changes again.
  rejected_.insert(t.target.to_string());
}

void AutoPipeController::drop_tracked_switch(const std::string& reason) {
  if (!tracked_switch_) return;
  if (tracked_switch_->ledger_id) {
    ledger_resolve(*tracked_switch_->ledger_id,
                   trace::OutcomeStatus::kSuperseded, -1.0, 0, reason);
  }
  tracked_switch_.reset();
  ++retry_epoch_;
}

// ---------------------------------------------------------------------------
// Decision-ledger plumbing
// ---------------------------------------------------------------------------

trace::DecisionLedger& AutoPipeController::ledger() {
  return cluster_.simulator().ledger();
}

std::string AutoPipeController::snapshot_digest(
    const ProfileSnapshot& snapshot) const {
  // FNV-1a over the bit patterns of the planner-relevant snapshot fields:
  // two snapshots hash equal iff the controller saw the same environment.
  std::uint64_t h = 14695981039346656037ull;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  const auto mix_double = [&mix](double d) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &d, sizeof(bits));
    mix(bits);
  };
  mix(static_cast<std::uint64_t>(snapshot.num_workers));
  mix_double(snapshot.iteration_time);
  for (sim::WorkerId w = 0; w < snapshot.num_workers; ++w) {
    mix_double(snapshot.worker_bandwidth[w]);
    mix_double(snapshot.worker_speed[w]);
  }
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, h);
  return std::string(buf);
}

void AutoPipeController::ledger_resolve(std::uint64_t id,
                                        trace::OutcomeStatus status,
                                        double realized, int window,
                                        std::string reason) {
  auto& lg = ledger();
  if (!lg.enabled() || id >= lg.size()) return;
  auto& metrics = cluster_.simulator().metrics();
  metrics.add(std::string("ledger.") + trace::outcome_status_name(status));
  // Live calibration: relative prediction error of the chosen action and
  // hindsight regret against the best candidate, as rolling series. The
  // offline report (src/analysis/calibration.*) recomputes the same
  // quantities from the serialized ledger.
  const trace::DecisionRecord& record = lg.records()[id];
  if (realized > 0.0) {
    if (record.chosen_pred > 0.0) {
      const double rel = (record.chosen_pred - realized) / realized;
      metrics.observe("calibration.predictor_ape", std::abs(rel));
      metrics.observe("calibration.predictor_bias", rel);
    }
    if (record.best_pred > 0.0) {
      metrics.observe("calibration.regret",
                      std::max(0.0, record.best_pred - realized) / realized);
    }
  }
  trace::DecisionOutcome outcome;
  outcome.status = status;
  outcome.realized_speed = realized;
  outcome.window_iterations = window;
  outcome.reason = std::move(reason);
  lg.resolve(id, std::move(outcome));
}

void AutoPipeController::advance_probes() {
  if (probes_.empty()) return;
  const double now = cluster_.simulator().now();
  const std::size_t iters = executor_.completed_iterations();
  for (std::size_t i = 0; i < probes_.size();) {
    LedgerProbe& p = probes_[i];
    if (iters <= p.decision_iteration) {
      ++i;
      continue;
    }
    if (p.window_start < 0.0) {
      p.window_start = now;  // first iteration after the decision: open
      ++i;
      continue;
    }
    ++p.samples;
    if (p.samples >= config_.validation_window && now > p.window_start) {
      const double realized = static_cast<double>(executor_.batch_size()) *
                              static_cast<double>(p.samples) /
                              (now - p.window_start);
      ledger_resolve(p.id,
                     p.switched ? trace::OutcomeStatus::kExecuted
                                : trace::OutcomeStatus::kRejected,
                     realized, static_cast<int>(p.samples), "measured");
      probes_.erase(probes_.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      ++i;
    }
  }
}

void AutoPipeController::supersede_probes(const std::string& reason) {
  if (probes_.empty()) return;
  const double now = cluster_.simulator().now();
  for (const LedgerProbe& p : probes_) {
    if (p.samples > 0 && now > p.window_start) {
      // Enough of a window to salvage a short measurement.
      const double realized = static_cast<double>(executor_.batch_size()) *
                              static_cast<double>(p.samples) /
                              (now - p.window_start);
      ledger_resolve(p.id,
                     p.switched ? trace::OutcomeStatus::kExecuted
                                : trace::OutcomeStatus::kRejected,
                     realized, static_cast<int>(p.samples),
                     "partial_" + reason);
    } else {
      ledger_resolve(p.id, trace::OutcomeStatus::kSuperseded, -1.0, 0,
                     reason);
    }
  }
  probes_.clear();
}

void AutoPipeController::resolve_validation_record(trace::OutcomeStatus status,
                                                   double realized, int window,
                                                   const std::string& reason) {
  if (!validation_ || !validation_->ledger_id) return;
  ledger_resolve(*validation_->ledger_id, status, realized, window, reason);
  validation_->ledger_id.reset();
}

void AutoPipeController::settle_pending_reward(
    const ProfileSnapshot& snapshot) {
  if (!agent_ || !pending_) return;
  // Reward: the training speed of the iteration following the decision,
  // net of the normalized switching cost (§4.3's reward function).
  const double speed =
      snapshot.iteration_time > 0.0
          ? static_cast<double>(executor_.batch_size()) /
                snapshot.iteration_time
          : 0.0;
  rl::Transition t;
  t.state = pending_->state;
  t.action = pending_->action;
  t.reward = encoder_.normalize_throughput(speed) -
             (pending_->action == 1 ? pending_->cost_if_switched : 0.0);
  // Next state: the same encoding re-evaluated now, with no candidate yet.
  t.next_state = encoder_.arbiter_state(snapshot, speed, speed, 0.0,
                                        static_cast<double>(
                                            executor_.completed_iterations() -
                                            last_switch_iteration_));
  t.terminal = false;
  agent_->observe(std::move(t));
  pending_.reset();
}

}  // namespace autopipe::core
