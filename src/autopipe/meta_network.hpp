// The meta-network of Fig 7: an LSTM block consumes a window of dynamic
// metric timesteps; its final hidden state is concatenated with the static
// metrics and the candidate worker-partition encoding, and fully-connected
// layers regress the training speed that partition would achieve — letting
// AutoPipe rank candidate partitions without deploying them.
//
// Training is offline on simulator-labelled samples, followed by online
// adaptation (transfer learning at a reduced learning rate, §4.3).
#pragma once

#include <cstddef>
#include <iosfwd>
#include <vector>

#include "nn/lstm.hpp"
#include "nn/mlp.hpp"
#include "nn/optimizer.hpp"

namespace autopipe::core {

struct MetaNetworkConfig {
  std::size_t dynamic_dim = 0;
  std::size_t static_dim = 0;
  std::size_t partition_dim = 0;
  std::size_t lstm_hidden = 32;
  std::vector<std::size_t> head_hidden = {64, 32};
  double learning_rate = 1e-3;
};

/// One supervised sample: a window of dynamic-metric timesteps, the static
/// and partition encodings, and the (normalized) speed the simulator
/// measured for that configuration.
struct SpeedSample {
  std::vector<std::vector<double>> dynamic_seq;
  std::vector<double> static_feat;
  std::vector<double> partition_feat;
  double target = 0.0;  // normalized samples/sec
};

class MetaNetwork {
 public:
  MetaNetwork(MetaNetworkConfig config, std::uint64_t seed);

  /// Predicted normalized training speed for one configuration.
  double predict(const std::vector<std::vector<double>>& dynamic_seq,
                 const std::vector<double>& static_feat,
                 const std::vector<double>& partition_feat);

  /// One gradient step over a mini-batch; returns the mean squared error.
  double train_batch(const std::vector<SpeedSample>& batch);

  /// Transfer-learning mode for deployment: shrink the learning rate so
  /// online updates adapt without forgetting.
  void begin_online_adaptation(double lr_scale = 0.1);

  const MetaNetworkConfig& config() const { return config_; }

  /// Lifetime count of predict() calls — the denominator a calibration
  /// report uses to relate ledger coverage to predictor load.
  std::size_t predictions() const { return predictions_; }

  void save(std::ostream& os) const;
  void load(std::istream& is);

 private:
  nn::Matrix forward_one(const SpeedSample& sample);

  MetaNetworkConfig config_;
  nn::Lstm lstm_;
  nn::Mlp head_;
  nn::Adam optimizer_;
  std::size_t predictions_ = 0;
};

}  // namespace autopipe::core
