#include "autopipe/profiler.hpp"

#include "common/expect.hpp"

namespace autopipe::core {

Profiler::Profiler(const models::ModelSpec& model, std::size_t batch_size,
                   double speed_ema_alpha)
    : model_(model), batch_(batch_size), speed_ema_alpha_(speed_ema_alpha) {
  AUTOPIPE_EXPECT(speed_ema_alpha_ > 0.0 && speed_ema_alpha_ <= 1.0);
  AUTOPIPE_EXPECT(batch_ >= 1);
  const std::size_t L = model_.num_layers();
  for (std::size_t l = 0; l < L; ++l) {
    activation_bytes_.push_back(model_.activation_bytes(l, batch_));
    gradient_bytes_.push_back(model_.gradient_bytes(l, batch_));
    param_bytes_.push_back(model_.param_bytes(l));
    fp_flops_.push_back(model_.fwd_flops(l, batch_));
    bp_flops_.push_back(model_.bwd_flops(l, batch_));
  }
}

ProfileSnapshot Profiler::snapshot(const pipeline::PipelineExecutor& executor,
                                   const sim::Cluster& cluster) {
  ProfileSnapshot snap;
  snap.num_layers = model_.num_layers();
  snap.num_workers = cluster.num_workers();
  snap.activation_bytes = activation_bytes_;
  snap.gradient_bytes = gradient_bytes_;
  snap.param_bytes = param_bytes_;
  snap.iteration_time = executor.last_iteration_time();

  for (sim::WorkerId w = 0; w < snap.num_workers; ++w)
    snap.worker_bandwidth.push_back(executor.observed_bandwidth(w));

  // Per-worker effective speed from cumulative device counters (processed
  // work / busy time since the previous snapshot) — the counter-based view
  // an nvidia-smi-style poll would give. It is exact under queueing: a
  // co-located tenant halves the processing rate and nothing else moves it.
  // Workers with no fresh work (idle, or just re-assigned by a switch)
  // keep their last known speed; before any measurement, the pre-training
  // exclusive profile seeds the estimate. The counter counts the submitted
  // (framework-inflated) FLOPs, so the efficiency factor converts back to
  // model FLOPs per second, the unit the planners use.
  if (speed_state_.empty()) {
    speed_state_.resize(snap.num_workers);
    prev_flops_.assign(snap.num_workers, 0.0);
    prev_busy_.assign(snap.num_workers, 0.0);
    for (sim::WorkerId w = 0; w < snap.num_workers; ++w)
      speed_state_[w] = cluster.gpu(w).spec().throughput *
                        executor.config().framework.compute_efficiency;
  }
  snap.worker_speed.assign(snap.num_workers, 0.0);
  const double efficiency = executor.config().framework.compute_efficiency;
  for (sim::WorkerId w = 0; w < snap.num_workers; ++w) {
    const double flops = cluster.gpu(w).total_flops_done();
    const Seconds busy = cluster.gpu(w).compute_time();
    const double dflops = flops - prev_flops_[w];
    const Seconds dbusy = busy - prev_busy_[w];
    prev_flops_[w] = flops;
    prev_busy_[w] = busy;
    if (dbusy > 1e-9 && dflops > 0.0) {
      const FlopsPerSec implied = dflops / dbusy * efficiency;
      speed_state_[w] = speed_ema_alpha_ * implied +
                        (1.0 - speed_ema_alpha_) * speed_state_[w];
    }
    snap.worker_speed[w] = speed_state_[w];
  }

  // Fill the FP_{i,j}/BP_{i,j} matrices from the speeds and the constant
  // per-layer ratios.
  snap.fp_time.assign(snap.num_workers,
                      std::vector<Seconds>(snap.num_layers, 0.0));
  snap.bp_time = snap.fp_time;
  for (sim::WorkerId w = 0; w < snap.num_workers; ++w) {
    for (std::size_t l = 0; l < snap.num_layers; ++l) {
      snap.fp_time[w][l] = fp_flops_[l] / snap.worker_speed[w];
      snap.bp_time[w][l] = bp_flops_[l] / snap.worker_speed[w];
    }
  }
  return snap;
}

partition::EnvironmentView Profiler::environment(
    const ProfileSnapshot& snap, const comm::FrameworkProfile& framework,
    comm::SyncScheme scheme) const {
  partition::EnvironmentView env;
  env.worker_speed = snap.worker_speed;
  env.worker_bandwidth = snap.worker_bandwidth;
  env.per_layer_overhead = framework.per_layer_overhead;
  env.comm_efficiency = framework.comm_efficiency;
  env.sync_scheme = scheme;
  return env;
}

}  // namespace autopipe::core
