// AutoPipe's profiler (§4.2, Table 1). Static, per-model quantities — layer
// count, O_i, G_i, P_i — are recorded once before training; the dynamic
// quantities — per-worker available bandwidth B_i and the per-worker,
// per-layer FP/BP times — are derived *non-intrusively* from the previous
// iteration: bandwidth from observed transfer rates, and layer times from
// the measured stage times scaled by the (constant) per-layer compute-time
// ratios, exactly the paper's "we measure the ratios before training and
// obtain the speed of a certain layer from the last iteration".
#pragma once

#include <cstddef>
#include <vector>

#include "comm/framework.hpp"
#include "common/units.hpp"
#include "models/model.hpp"
#include "partition/environment.hpp"
#include "pipeline/executor.hpp"
#include "sim/cluster.hpp"

namespace autopipe::core {

/// One iteration's Table-1 readings.
struct ProfileSnapshot {
  std::size_t num_layers = 0;   // L
  std::size_t num_workers = 0;  // N
  std::vector<Bytes> activation_bytes;  // O_i, per mini-batch
  std::vector<Bytes> gradient_bytes;    // G_i
  std::vector<Bytes> param_bytes;       // P_i
  std::vector<BytesPerSec> worker_bandwidth;  // B_i (observed)
  /// FP_{i,j} / BP_{i,j}: worker-major, layer-minor.
  std::vector<std::vector<Seconds>> fp_time;
  std::vector<std::vector<Seconds>> bp_time;
  /// Implied effective speed of each worker (FLOP/s), the quantity the
  /// planners actually consume.
  std::vector<FlopsPerSec> worker_speed;
  Seconds iteration_time = 0.0;
};

class Profiler {
 public:
  Profiler(const models::ModelSpec& model, std::size_t batch_size,
           double speed_ema_alpha = 0.4);

  /// Take a non-intrusive reading from the running executor. Stateful:
  /// per-worker implied speeds are EMA-smoothed across iterations, and a
  /// worker with no fresh stage timing (idle, or just re-assigned by a
  /// switch) keeps its last known speed instead of snapping back to the
  /// exclusive-device profile.
  ProfileSnapshot snapshot(const pipeline::PipelineExecutor& executor,
                           const sim::Cluster& cluster);

  /// Turn a snapshot into the planners' environment view.
  partition::EnvironmentView environment(
      const ProfileSnapshot& snap, const comm::FrameworkProfile& framework,
      comm::SyncScheme scheme) const;

  const models::ModelSpec& model() const { return model_; }
  std::size_t batch_size() const { return batch_; }

 private:
  const models::ModelSpec& model_;
  std::size_t batch_;
  // Pre-training constants.
  std::vector<Bytes> activation_bytes_;
  std::vector<Bytes> gradient_bytes_;
  std::vector<Bytes> param_bytes_;
  std::vector<double> fp_flops_;  // per layer, at batch_
  std::vector<double> bp_flops_;
  double speed_ema_alpha_;
  /// Last smoothed speed per worker (empty until the first snapshot).
  std::vector<FlopsPerSec> speed_state_;
  /// Cumulative GPU counters at the previous snapshot, for delta rates.
  std::vector<double> prev_flops_;
  std::vector<Seconds> prev_busy_;
};

}  // namespace autopipe::core
