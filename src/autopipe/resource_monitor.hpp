// Resource-change detection (the "resource changing detector" component of
// the prototype): maintains smoothed baselines of per-worker bandwidth and
// compute speed and flags when any worker deviates beyond a relative
// threshold — the trigger for an out-of-schedule partition re-evaluation.
#pragma once

#include <string>
#include <vector>

#include "autopipe/profiler.hpp"

namespace autopipe::core {

struct ResourceChange {
  bool changed = false;
  /// Largest relative deviation observed.
  double magnitude = 0.0;
  std::string description;
};

class ResourceMonitor {
 public:
  /// A change is reported only when some worker's deviation from baseline
  /// exceeds `relative_threshold` for `persistence` consecutive snapshots —
  /// transient fair-share jitter in the observed bandwidth must not count
  /// as a resource event.
  explicit ResourceMonitor(double relative_threshold = 0.3,
                           double ema_alpha = 0.3,
                           std::size_t persistence = 3);

  /// Feed one snapshot; returns whether a significant change occurred since
  /// the last accepted baseline. On detection the baseline resets to the
  /// new reading.
  ResourceChange update(const ProfileSnapshot& snapshot);

  void reset();

 private:
  double threshold_;
  double alpha_;
  std::size_t persistence_;
  std::size_t consecutive_over_ = 0;
  bool primed_ = false;
  std::vector<double> bw_baseline_;
  std::vector<double> speed_baseline_;
};

}  // namespace autopipe::core
