#include "autopipe/training.hpp"

#include <algorithm>
#include <deque>
#include <memory>
#include <optional>

#include "common/expect.hpp"
#include "common/log.hpp"
#include "partition/neighborhood.hpp"
#include "partition/pipedream_planner.hpp"
#include "sim/trace.hpp"

namespace autopipe::core {

namespace {

/// A randomized shared-cluster instance plus the initial PipeDream plan.
struct Scenario {
  std::unique_ptr<sim::Simulator> simulator;
  std::unique_ptr<sim::Cluster> cluster;
  std::optional<partition::PlanResult> plan;
};

Scenario make_scenario(const models::ModelSpec& model,
                       const ScenarioConfig& config, Rng& rng) {
  Scenario s;
  s.simulator = std::make_unique<sim::Simulator>();

  sim::ClusterConfig cc;
  cc.num_servers = config.num_servers;
  cc.gpus_per_server = config.gpus_per_server;
  const double gbps_pick =
      config.bandwidth_gbps[static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(config.bandwidth_gbps.size()) - 1))];
  cc.nic_bandwidth = gbps(gbps_pick);
  s.cluster = std::make_unique<sim::Cluster>(*s.simulator, cc);

  // Random contention: some GPUs host extra tenants, some NICs are cut.
  for (sim::WorkerId w = 0; w < s.cluster->num_workers(); ++w) {
    const int extra =
        static_cast<int>(rng.uniform_int(0, config.max_extra_tenants));
    for (int i = 0; i < extra; ++i) s.cluster->add_background_job(w);
  }
  for (std::size_t server = 0; server < s.cluster->num_servers(); ++server) {
    if (rng.chance(0.3)) {
      s.cluster->set_nic_bandwidth(server,
                                   s.cluster->nic_bandwidth(server) * 0.5);
    }
  }

  // Initial plan: what PipeDream would install (exclusive-GPU view).
  auto env = partition::EnvironmentView::from_cluster(
      *s.cluster, config.framework, config.sync_scheme);
  partition::PipeDreamPlanner planner(model, env, model.default_batch_size(),
                                      partition::PipeDreamPlanner::Mode::kPipeDream);
  s.plan = planner.plan(s.cluster->num_workers());
  return s;
}

partition::Partition perturb(const partition::Partition& base,
                             std::size_t max_moves, Rng& rng) {
  partition::Partition current = base;
  const auto moves = rng.uniform_int(0, static_cast<std::int64_t>(max_moves));
  for (std::int64_t i = 0; i < moves; ++i) {
    auto candidates = partition::two_worker_candidates(current);
    if (candidates.empty()) break;
    const auto pick = static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(candidates.size()) - 1));
    current = candidates[pick].partition;
  }
  return current;
}

}  // namespace

std::vector<SpeedSample> generate_speed_dataset(
    const models::ModelSpec& model, std::size_t count, std::uint64_t seed,
    const FeatureEncoder& encoder, const ScenarioConfig& scenario) {
  Rng rng(seed);
  std::vector<SpeedSample> dataset;
  dataset.reserve(count);

  for (std::size_t n = 0; n < count; ++n) {
    Scenario s = make_scenario(model, scenario, rng);
    partition::Partition p =
        perturb(s.plan->partition, scenario.max_partition_perturbations, rng);

    pipeline::ExecutorConfig ec;
    ec.framework = scenario.framework;
    ec.sync_scheme = scenario.sync_scheme;
    pipeline::PipelineExecutor executor(*s.cluster, model, p, ec);

    // Collect the dynamic-feature window while the measurement runs.
    Profiler profiler(model, executor.batch_size());
    std::deque<std::vector<double>> history;
    executor.set_iteration_callback([&](std::size_t) {
      history.push_back(
          encoder.dynamic_features(profiler.snapshot(executor, *s.cluster)));
      while (history.size() > 8) history.pop_front();
    });

    const auto report = executor.run(
        scenario.warmup_iterations + scenario.measure_iterations,
        scenario.warmup_iterations);

    SpeedSample sample;
    sample.dynamic_seq.assign(history.begin(), history.end());
    sample.static_feat =
        encoder.static_features(profiler.snapshot(executor, *s.cluster));
    sample.partition_feat =
        encoder.partition_features(p, model.num_layers());
    sample.target = encoder.normalize_throughput(report.throughput);
    dataset.push_back(std::move(sample));
  }
  return dataset;
}

TrainingResult train_meta_network(MetaNetwork& meta,
                                  std::vector<SpeedSample> dataset,
                                  std::size_t epochs, std::size_t batch_size,
                                  std::uint64_t seed) {
  AUTOPIPE_EXPECT(dataset.size() >= 4);
  AUTOPIPE_EXPECT(batch_size >= 1);
  Rng rng(seed);
  rng.shuffle(dataset);
  const std::size_t val_count = std::max<std::size_t>(1, dataset.size() / 10);
  std::vector<SpeedSample> val(dataset.end() - static_cast<std::ptrdiff_t>(val_count),
                               dataset.end());
  dataset.resize(dataset.size() - val_count);

  TrainingResult result;
  result.epochs = epochs;
  for (std::size_t e = 0; e < epochs; ++e) {
    rng.shuffle(dataset);
    double epoch_loss = 0.0;
    std::size_t batches = 0;
    for (std::size_t i = 0; i < dataset.size(); i += batch_size) {
      const std::size_t end = std::min(i + batch_size, dataset.size());
      std::vector<SpeedSample> batch(dataset.begin() + static_cast<std::ptrdiff_t>(i),
                                     dataset.begin() + static_cast<std::ptrdiff_t>(end));
      epoch_loss += meta.train_batch(batch);
      ++batches;
    }
    result.train_loss = epoch_loss / static_cast<double>(std::max<std::size_t>(1, batches));
  }

  double val_loss = 0.0;
  for (const SpeedSample& s : val) {
    const double pred =
        meta.predict(s.dynamic_seq, s.static_feat, s.partition_feat);
    val_loss += (pred - s.target) * (pred - s.target);
  }
  result.validation_loss = val_loss / static_cast<double>(val.size());
  return result;
}

ArbiterTrainingResult train_arbiter_offline(
    rl::DqnAgent& agent, const models::ModelSpec& model,
    std::size_t episodes, std::size_t iterations_per_episode,
    std::uint64_t seed, MetaNetwork* meta, const ScenarioConfig& scenario) {
  Rng rng(seed);
  ArbiterTrainingResult result;
  result.episodes = episodes;

  for (std::size_t e = 0; e < episodes; ++e) {
    Scenario s = make_scenario(model, scenario, rng);

    pipeline::ExecutorConfig ec;
    ec.framework = scenario.framework;
    ec.sync_scheme = scenario.sync_scheme;
    pipeline::PipelineExecutor executor(*s.cluster, model, s.plan->partition,
                                        ec);

    ControllerConfig cc;
    cc.arbiter_mode = ControllerConfig::ArbiterMode::kRl;
    cc.use_meta_network = meta != nullptr;
    cc.arbiter_explore = true;
    cc.decision_interval = 3;
    cc.min_history_iterations = 3;  // short episodes: explore early
    cc.candidate_gain_floor = 0.0;
    cc.validate_switches = false;   // the reward signal judges switches
    AutoPipeController controller(*s.cluster, executor, cc, meta, &agent);
    controller.attach();

    // Random mid-episode resource events make the decision problem real.
    sim::ResourceTrace trace;
    const auto n_events = rng.uniform_int(1, 3);
    for (std::int64_t i = 0; i < n_events; ++i) {
      const auto iter = static_cast<std::size_t>(rng.uniform_int(
          3, static_cast<std::int64_t>(iterations_per_episode) - 2));
      if (rng.chance(0.5)) {
        const double g = scenario.bandwidth_gbps[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(
                                   scenario.bandwidth_gbps.size()) - 1))];
        trace.at_iteration(iter,
                           sim::ResourceTrace::set_all_nic_bandwidth(gbps(g)));
      } else {
        trace.at_iteration(iter, sim::ResourceTrace::add_job_all_gpus());
      }
    }
    executor.set_iteration_callback([&](std::size_t iters) {
      trace.apply_iteration(iters, *s.cluster);
      controller.on_iteration(iters);
    });

    const auto report = executor.run(iterations_per_episode, 1);
    result.total_switches += controller.stats().switches_requested;
    result.mean_episode_throughput += report.throughput;
  }
  result.mean_episode_throughput /= static_cast<double>(episodes);
  return result;
}

}  // namespace autopipe::core
