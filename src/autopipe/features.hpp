// Feature engineering for the meta-network and the RL arbiter: Table-1
// snapshots, candidate partitions and environment summaries are mapped to
// fixed-width, roughly unit-scale vectors (padded to a maximum worker
// count) so one trained network serves different cluster sizes.
#pragma once

#include <cstddef>
#include <vector>

#include "autopipe/profiler.hpp"
#include "partition/partition.hpp"

namespace autopipe::core {

struct FeatureConfig {
  std::size_t max_workers = 16;
  // Normalization scales (chosen near the testbed's operating point).
  double bandwidth_scale = 12.5e9;   // 100 Gbps in bytes/sec
  double speed_scale = 5e12;         // ~1 contended P100
  double flops_scale = 5e12;         // per-layer work scale
  double bytes_scale = 512.0 * 1024 * 1024;
  double time_scale = 1.0;           // iteration seconds
  double throughput_scale = 500.0;   // img/sec normalization for targets
};

class FeatureEncoder {
 public:
  explicit FeatureEncoder(FeatureConfig config = {});

  /// Static metrics (Table 1, rows 1-5), aggregated: layer/worker counts
  /// plus mean/max/total of per-layer work, activations and parameters.
  std::vector<double> static_features(const ProfileSnapshot& snap) const;

  /// One LSTM timestep of dynamic metrics (Table 1, rows 6-8): per-worker
  /// bandwidth and speed (padded) plus the last iteration time.
  std::vector<double> dynamic_features(const ProfileSnapshot& snap) const;

  /// The "worker partition solution" input: per worker (padded), the
  /// normalized first/last layer and replication of its stage.
  std::vector<double> partition_features(
      const partition::Partition& partition, std::size_t num_layers) const;

  /// Arbiter state: dynamic summary + predicted current/candidate speeds +
  /// predicted switch cost + iterations since last switch.
  std::vector<double> arbiter_state(const ProfileSnapshot& snap,
                                    double current_speed_pred,
                                    double candidate_speed_pred,
                                    double switch_cost_pred,
                                    double iterations_since_switch) const;

  std::size_t static_dim() const;
  std::size_t dynamic_dim() const;
  std::size_t partition_dim() const;
  std::size_t arbiter_dim() const;

  const FeatureConfig& config() const { return config_; }

  /// Normalize / denormalize prediction targets (samples per second).
  double normalize_throughput(double samples_per_sec) const;
  double denormalize_throughput(double normalized) const;

 private:
  FeatureConfig config_;
};

}  // namespace autopipe::core
