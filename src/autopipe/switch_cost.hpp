// Switching-cost estimation (§4.3 uses "a similar meta-network as the speed
// prediction model" to normalize switching cost into the RL reward). We
// provide both: a transparent analytic estimate derived from the migration
// volume and pipeline state, and a small learned regressor that can be
// fitted to measured stalls; the controller uses the analytic form unless a
// trained regressor is supplied.
#pragma once

#include <cstddef>

#include "common/units.hpp"
#include "models/model.hpp"
#include "nn/mlp.hpp"
#include "nn/optimizer.hpp"
#include "partition/environment.hpp"
#include "partition/partition.hpp"

namespace autopipe::core {

struct SwitchCostEstimate {
  /// Weight bytes that must cross the network.
  Bytes migration_bytes = 0.0;
  std::size_t changed_workers = 0;
  std::size_t moved_layers = 0;
  /// Expected lost time under fine-grained (layer-by-layer, stash-ordered)
  /// switching: restaging overhead plus the slowdown from migration traffic
  /// contending with training traffic.
  Seconds fine_grained = 0.0;
  /// Expected lost time under stop-the-world: drain + transfer + refill.
  Seconds stop_the_world = 0.0;
};

SwitchCostEstimate analytic_switch_cost(
    const models::ModelSpec& model, const partition::Partition& from,
    const partition::Partition& to, const partition::EnvironmentView& env,
    Seconds current_batch_time, std::size_t in_flight,
    Seconds restage_overhead_per_layer);

/// The stall the estimate predicts for the given switch mode — the value
/// the controller gates on and the decision ledger records per candidate.
inline Seconds cost_for_mode(const SwitchCostEstimate& estimate,
                             bool fine_grained) {
  return fine_grained ? estimate.fine_grained : estimate.stop_the_world;
}

/// Learned refinement: regress measured stall seconds from a tiny feature
/// vector (migration volume, bandwidth, pipeline state). Used by the
/// ablation bench; the controller defaults to the analytic estimate.
class SwitchCostModel {
 public:
  explicit SwitchCostModel(std::uint64_t seed);

  struct Sample {
    SwitchCostEstimate estimate;  // analytic inputs as features
    Seconds measured_stall = 0.0;
  };

  Seconds predict(const SwitchCostEstimate& estimate);
  double train_batch(const std::vector<Sample>& batch);

 private:
  static std::vector<double> featurize(const SwitchCostEstimate& e);
  nn::Mlp net_;
  nn::Adam optimizer_;
};

}  // namespace autopipe::core
