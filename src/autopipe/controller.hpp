// The AutoPipe controller: the closed loop of §4. Every iteration it takes
// a non-intrusive profile; on resource change (or a periodic fallback) it
// enumerates the two-worker candidate neighbourhood, predicts each
// candidate's speed with the meta-network (or the analytic model, for the
// ablation), asks the arbiter whether the best candidate is worth the
// switching cost, and if so performs a fine-grained switch on the running
// executor. Measured outcomes flow back as RL rewards and (optionally)
// online-adaptation samples for the meta-network.
#pragma once

#include <chrono>
#include <cstddef>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <unordered_set>

#include "autopipe/features.hpp"
#include "autopipe/meta_network.hpp"
#include "autopipe/profiler.hpp"
#include "autopipe/resource_monitor.hpp"
#include "autopipe/switch_cost.hpp"
#include "pipeline/executor.hpp"
#include "rl/dqn.hpp"

namespace autopipe::core {

struct ControllerConfig {
  enum class ArbiterMode {
    kRl,            ///< the paper's learned arbiter
    kAlwaysSwitch,  ///< straw-man: adopt every improving candidate
    kNeverSwitch,   ///< static configuration (PipeDream behaviour)
    kThreshold,     ///< switch when predicted gain exceeds threshold_gain
  };
  ArbiterMode arbiter_mode = ArbiterMode::kRl;
  pipeline::PipelineExecutor::SwitchMode switch_mode =
      pipeline::PipelineExecutor::SwitchMode::kFineGrained;
  /// false: score candidates with the analytic integrated model instead of
  /// the meta-network (predictor ablation).
  bool use_meta_network = true;
  /// LSTM window of dynamic-metric timesteps.
  std::size_t history_window = 8;
  /// No decisions before this many completed iterations: the pipeline is
  /// filling and the profiler is converging, so early periods and speeds
  /// are not representative.
  std::size_t min_history_iterations = 10;
  /// Periodic re-evaluation interval (iterations) when no change detected.
  std::size_t decision_interval = 5;
  /// Minimum predicted relative gain for a candidate to be considered.
  double candidate_gain_floor = 0.01;
  /// Gain threshold for ArbiterMode::kThreshold.
  double threshold_gain = 0.05;
  /// The estimated switching cost must pay back within this many
  /// iterations of the predicted gain for the threshold arbiter to act.
  double payback_horizon_iterations = 25.0;
  /// Whether measured speeds feed back into the meta-network online.
  bool online_adaptation = true;
  std::size_t adaptation_batch = 16;
  /// Explore (epsilon-greedy) in the RL arbiter — on for offline training
  /// episodes, off for deployment.
  bool arbiter_explore = false;
  /// Measured-feedback validation: after a switch, compare the measured
  /// speed over `validation_window` iterations with the pre-switch speed;
  /// on regression, revert to the previous partition and hold off further
  /// decisions for `revert_cooldown` iterations. This is the deployment
  /// safety net around predictor error (the RL reward plays the same role
  /// during training).
  bool validate_switches = true;
  std::size_t validation_window = 8;
  std::size_t revert_cooldown = 6;
  /// A switch survives validation only if the measured period improves by
  /// at least this fraction; otherwise it is reverted and blacklisted.
  double regression_tolerance = 0.005;
  /// On a detected resource change, compute a full re-plan against the
  /// profiled environment and adopt it in one fine-grained switch when it
  /// predicts at least replan_gain_threshold relative gain. Between
  /// changes, the two-worker neighbourhood fine-tunes gradually (§4.2).
  bool replan_on_change = true;
  double replan_gain_threshold = 0.10;
  /// Alternative §4.2 mode exercised by the neighbourhood ablation: walk
  /// toward the re-plan with successive two-worker switches instead of one
  /// wholesale adoption.
  bool gradual_migration = false;
};

class AutoPipeController {
 public:
  /// `meta` and `agent` may be null: a null meta falls back to the analytic
  /// predictor; a null agent is only legal for non-RL arbiter modes.
  AutoPipeController(sim::Cluster& cluster,
                     pipeline::PipelineExecutor& executor,
                     ControllerConfig config, MetaNetwork* meta,
                     rl::DqnAgent* agent,
                     FeatureEncoder encoder = FeatureEncoder{});

  /// Register as the executor's iteration callback. Call once.
  void attach();

  /// The per-iteration hook (public so tests can drive it directly).
  void on_iteration(std::size_t completed_iterations);

  struct Stats {
    std::size_t decisions = 0;
    std::size_t switches_requested = 0;
    std::size_t candidates_evaluated = 0;
    Seconds total_decision_wall_seconds = 0.0;  // host wall clock (Fig 12)
    Seconds last_decision_wall_seconds = 0.0;
    std::size_t changes_detected = 0;
  };
  const Stats& stats() const { return stats_; }

  const FeatureEncoder& encoder() const { return encoder_; }

 private:
  void evaluate_and_decide(const ProfileSnapshot& snapshot,
                           bool after_change);
  /// Full re-plan against the profiled environment (DP + short descent).
  /// Returns the plan and its analytic speed prediction.
  std::pair<partition::Partition, double> replan(
      const ProfileSnapshot& snapshot);
  /// Take one step of an in-progress gradual migration. Returns true if a
  /// switch was issued (or the target is still pending).
  bool pursue_target();
  double predict_speed(const ProfileSnapshot& snapshot,
                       const partition::Partition& candidate);
  void settle_pending_reward(const ProfileSnapshot& snapshot);
  /// Median of the recent iteration periods.
  double baseline_period() const;

  sim::Cluster& cluster_;
  pipeline::PipelineExecutor& executor_;
  ControllerConfig config_;
  MetaNetwork* meta_;
  rl::DqnAgent* agent_;
  FeatureEncoder encoder_;
  Profiler profiler_;
  ResourceMonitor monitor_;

  std::deque<std::vector<double>> dynamic_history_;
  std::vector<double> static_features_;

  struct PendingDecision {
    std::vector<double> state;
    int action = 0;
    double cost_if_switched = 0.0;
  };
  std::optional<PendingDecision> pending_;
  std::size_t last_switch_iteration_ = 0;

  /// Long-range migration target (a full re-plan worth walking toward) and
  /// the number of steps taken, as a runaway guard.
  std::optional<partition::Partition> target_;
  std::size_t target_steps_ = 0;

  struct Validation {
    partition::Partition previous;
    /// Mean seconds/iteration before the switch (lower is better).
    double period_before = 0.0;
    std::size_t switch_iteration = 0;
    /// Simulated instant the post-switch window opened.
    double window_start = -1.0;
    std::size_t samples = 0;
  };
  std::optional<Validation> validation_;
  std::size_t cooldown_until_ = 0;
  /// Consecutive reverted switches; drives exponential decision backoff so
  /// a mispredicting predictor cannot thrash a stable environment.
  std::size_t consecutive_reverts_ = 0;
  /// Rolling window of recent iteration periods (seconds), the baseline a
  /// switch is validated against.
  std::deque<double> recent_period_;
  /// Partitions that measured worse than predicted after adoption; skipped
  /// until the environment changes again.
  std::unordered_set<std::string> rejected_;

  std::vector<SpeedSample> adaptation_buffer_;
  Stats stats_;
};

}  // namespace autopipe::core
