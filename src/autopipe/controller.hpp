// The AutoPipe controller: the closed loop of §4. Every iteration it takes
// a non-intrusive profile; on resource change (or a periodic fallback) it
// enumerates the two-worker candidate neighbourhood, predicts each
// candidate's speed with the meta-network (or the analytic model, for the
// ablation), asks the arbiter whether the best candidate is worth the
// switching cost, and if so performs a fine-grained switch on the running
// executor. Measured outcomes flow back as RL rewards and (optionally)
// online-adaptation samples for the meta-network.
#pragma once

#include <chrono>
#include <cstddef>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <unordered_set>

#include "autopipe/features.hpp"
#include "autopipe/meta_network.hpp"
#include "common/ledger.hpp"
#include "autopipe/profiler.hpp"
#include "autopipe/resource_monitor.hpp"
#include "autopipe/switch_cost.hpp"
#include "pipeline/executor.hpp"
#include "rl/dqn.hpp"

namespace autopipe::core {

struct ControllerConfig {
  enum class ArbiterMode {
    kRl,            ///< the paper's learned arbiter
    kAlwaysSwitch,  ///< straw-man: adopt every improving candidate
    kNeverSwitch,   ///< static configuration (PipeDream behaviour)
    kThreshold,     ///< switch when predicted gain exceeds threshold_gain
  };
  ArbiterMode arbiter_mode = ArbiterMode::kRl;
  pipeline::PipelineExecutor::SwitchMode switch_mode =
      pipeline::PipelineExecutor::SwitchMode::kFineGrained;
  /// false: score candidates with the analytic integrated model instead of
  /// the meta-network (predictor ablation).
  bool use_meta_network = true;
  /// LSTM window of dynamic-metric timesteps.
  std::size_t history_window = 8;
  /// No decisions before this many completed iterations: the pipeline is
  /// filling and the profiler is converging, so early periods and speeds
  /// are not representative.
  std::size_t min_history_iterations = 10;
  /// Periodic re-evaluation interval (iterations) when no change detected.
  std::size_t decision_interval = 5;
  /// Minimum predicted relative gain for a candidate to be considered.
  double candidate_gain_floor = 0.01;
  /// Gain threshold for ArbiterMode::kThreshold.
  double threshold_gain = 0.05;
  /// The estimated switching cost must pay back within this many
  /// iterations of the predicted gain for the threshold arbiter to act.
  double payback_horizon_iterations = 25.0;
  /// Whether measured speeds feed back into the meta-network online.
  bool online_adaptation = true;
  std::size_t adaptation_batch = 16;
  /// Explore (epsilon-greedy) in the RL arbiter — on for offline training
  /// episodes, off for deployment.
  bool arbiter_explore = false;
  /// Measured-feedback validation: after a switch, compare the measured
  /// speed over `validation_window` iterations with the pre-switch speed;
  /// on regression, revert to the previous partition and hold off further
  /// decisions for `revert_cooldown` iterations. This is the deployment
  /// safety net around predictor error (the RL reward plays the same role
  /// during training).
  bool validate_switches = true;
  std::size_t validation_window = 8;
  std::size_t revert_cooldown = 6;
  /// Ceiling on the consecutive-revert exponential backoff: the decision
  /// cooldown after the n-th straight revert is
  /// `revert_cooldown << min(n, max_revert_backoff_shift)` iterations, so
  /// many successive reverts saturate at a bounded pause (with the defaults,
  /// 6 << 6 = 384 iterations) instead of overflowing the shift or freezing
  /// planning forever. See revert_backoff_iterations().
  std::size_t max_revert_backoff_shift = 6;
  /// A switch survives validation only if the measured period improves by
  /// at least this fraction; otherwise it is reverted and blacklisted.
  double regression_tolerance = 0.005;
  /// On a detected resource change, compute a full re-plan against the
  /// profiled environment and adopt it in one fine-grained switch when it
  /// predicts at least replan_gain_threshold relative gain. Between
  /// changes, the two-worker neighbourhood fine-tunes gradually (§4.2).
  bool replan_on_change = true;
  double replan_gain_threshold = 0.10;
  /// Alternative §4.2 mode exercised by the neighbourhood ablation: walk
  /// toward the re-plan with successive two-worker switches instead of one
  /// wholesale adoption.
  bool gradual_migration = false;

  // --- Fault-recovery watchdog (robustness layer) ---
  /// A simulator-scheduled tick declares the pipeline wedged when no
  /// iteration completes within `watchdog_factor` x the EMA iteration
  /// period and either a worker is unreachable or the stall outlasts
  /// `watchdog_fill_grace`; the response is an emergency re-plan over the
  /// reachable workers only.
  bool enable_watchdog = true;
  double watchdog_factor = 4.0;
  /// Tick-interval floor; also the base unit of the recovery backoff.
  Seconds watchdog_min_interval = 0.25;
  /// Allowance for pipeline fill, long stop-the-world drains, and slow
  /// first iterations: with every worker reachable, a stall shorter than
  /// this is never treated as a fault.
  Seconds watchdog_fill_grace = 10.0;
  /// Recovery attempts before the watchdog gives up and lets the
  /// executor's deadlock detection surface the failure.
  std::size_t recovery_max_retries = 6;
  /// Backoff multiplier between consecutive recovery attempts.
  double recovery_backoff_base = 2.0;

  // --- Interruptible-switch retry policy ---
  /// A switch attempt aborted by a fault mid-protocol (the executor rolls
  /// the partial migration back) is retried after an exponential backoff of
  /// `switch_retry_base_interval * switch_retry_backoff^(n-1)` simulated
  /// seconds. After `switch_retry_max` total attempts the target is
  /// abandoned: its ledger record resolves to the aborted_<phase> outcome
  /// of the last attempt and the partition is blacklisted for the regime.
  std::size_t switch_retry_max = 3;
  Seconds switch_retry_base_interval = 0.05;
  double switch_retry_backoff = 2.0;

  // --- Co-tenancy (multi-job clusters) ---
  /// 1-based job id stamped on this controller's ledger decision records.
  /// 0 — the single-tenant default — leaves records untagged so legacy
  /// ledgers stay byte-identical.
  std::uint64_t job_id = 0;
  /// The cluster workers this controller's job owns. Empty (the default)
  /// means the whole cluster, which is the historical single-tenant
  /// behaviour. When set, planning, watchdog reachability and recovery all
  /// confine themselves to these workers; the JobManager adjusts the set at
  /// runtime through set_owned_workers() as the arbiter grants and revokes
  /// GPUs.
  std::vector<sim::WorkerId> owned_workers;
};

class AutoPipeController {
 public:
  /// `meta` and `agent` may be null: a null meta falls back to the analytic
  /// predictor; a null agent is only legal for non-RL arbiter modes.
  AutoPipeController(sim::Cluster& cluster,
                     pipeline::PipelineExecutor& executor,
                     ControllerConfig config, MetaNetwork* meta,
                     rl::DqnAgent* agent,
                     FeatureEncoder encoder = FeatureEncoder{});
  ~AutoPipeController();

  /// Register as the executor's iteration callback. Call once.
  void attach();

  /// The per-iteration hook (public so tests can drive it directly).
  void on_iteration(std::size_t completed_iterations);

  struct Stats {
    std::size_t decisions = 0;
    std::size_t switches_requested = 0;
    std::size_t candidates_evaluated = 0;
    Seconds total_decision_wall_seconds = 0.0;  // host wall clock (Fig 12)
    Seconds last_decision_wall_seconds = 0.0;
    std::size_t changes_detected = 0;
    // Fault-recovery counters.
    std::size_t wedges_detected = 0;
    std::size_t emergency_replans = 0;
    std::size_t readmissions = 0;
    std::size_t recovery_giveups = 0;
    // Interruptible-switch retry policy.
    std::size_t switch_retries = 0;
    std::size_t switch_abandonments = 0;
  };
  const Stats& stats() const { return stats_; }

  /// Decision cooldown (iterations) after `reverts` consecutive reverted
  /// switches: `revert_cooldown << min(reverts, max_revert_backoff_shift)`,
  /// with the shift additionally clamped below the word width so no
  /// configuration can overflow. Public so tests can pin the ceiling.
  std::size_t revert_backoff_iterations(std::size_t reverts) const;

  const FeatureEncoder& encoder() const { return encoder_; }

  /// Workers excluded by the last emergency re-plan and not yet readmitted.
  const std::vector<sim::WorkerId>& excluded_workers() const {
    return excluded_workers_;
  }

  /// The watchdog's wedge verdict (public so tests can observe it).
  bool wedged() const { return wedged_; }

  /// Replace the job's owned-worker set (sorted, deduplicated internally).
  /// The resource monitor is deliberately NOT reset: its next update sees a
  /// changed worker population, reports "worker population changed" and
  /// re-primes — exactly the resource-change signal that triggers a re-plan
  /// onto the new set.
  void set_owned_workers(std::vector<sim::WorkerId> workers);
  const std::vector<sim::WorkerId>& owned_workers() const { return owned_; }

 private:
  void evaluate_and_decide(const ProfileSnapshot& snapshot,
                           bool after_change);
  /// Full re-plan against the profiled environment (DP + short descent).
  /// Returns the plan and its analytic speed prediction.
  std::pair<partition::Partition, double> replan(
      const ProfileSnapshot& snapshot);
  /// Take one step of an in-progress gradual migration. Returns true if a
  /// switch was issued (or the target is still pending).
  bool pursue_target();
  double predict_speed(const ProfileSnapshot& snapshot,
                       const partition::Partition& candidate);
  void settle_pending_reward(const ProfileSnapshot& snapshot);
  /// Median of the recent iteration periods.
  double baseline_period() const;
  /// True when every worker of `p` is up and its server's link is up.
  bool partition_reachable(const partition::Partition& p) const;
  void arm_watchdog();
  void watchdog_tick();
  /// One emergency-recovery attempt: re-plan over the reachable workers and
  /// adopt it through the executor's emergency path. Bounded retries with
  /// exponential backoff; gives up after recovery_max_retries.
  void attempt_recovery(Seconds now);
  /// Fold returned excluded workers back in with a full-width re-plan.
  /// Returns true if a switch was requested.
  bool maybe_readmit(const ProfileSnapshot& snapshot);

  // --- Decision-ledger plumbing (no-ops while the ledger is disabled) ---
  trace::DecisionLedger& ledger();
  /// FNV-1a hex digest of the resource snapshot a decision was taken under.
  std::string snapshot_digest(const ProfileSnapshot& snapshot) const;
  /// Resolve record `id` and feed the live calibration series in metrics().
  void ledger_resolve(std::uint64_t id, trace::OutcomeStatus status,
                      double realized, int window, std::string reason);
  /// Advance every open realized-speed probe by one completed iteration.
  void advance_probes();
  /// Terminal-state every open probe: the regime changed under it.
  void supersede_probes(const std::string& reason);
  /// Resolve the record attached to the active validation window, if any.
  void resolve_validation_record(trace::OutcomeStatus status, double realized,
                                 int window, const std::string& reason);

  // --- Interruptible-switch tracking (retry / backoff / abandonment) ---
  /// Executor phase-observer hook: arms validation on Commit, schedules a
  /// backed-off retry (or abandons) on a fault Abort.
  void on_switch_event(const pipeline::PipelineExecutor::SwitchAttempt& a);
  /// Schedule the next retry of the tracked switch, or abandon it once the
  /// attempt budget is spent.
  void schedule_switch_retry();
  /// Terminal failure: resolve the ledger record to aborted_<phase>,
  /// blacklist the target for this regime, emit `switch.abandoned`.
  void abandon_tracked_switch();
  /// A newer decision (or recovery) supersedes the tracked switch.
  void drop_tracked_switch(const std::string& reason);

  /// Owned-worker subselection helpers for co-tenancy: owned_ is always the
  /// authoritative sorted set (the whole cluster when config_.owned_workers
  /// is empty), and job_scoped() says whether it is a strict subset.
  bool job_scoped() const { return owned_.size() < cluster_.num_workers(); }
  /// Profile snapshot restricted to the owned workers (identity when not
  /// job-scoped): dense [0, owned) id space for the DP planner and the
  /// resource monitor.
  ProfileSnapshot scoped_snapshot(const ProfileSnapshot& snapshot) const;

  sim::Cluster& cluster_;
  pipeline::PipelineExecutor& executor_;
  ControllerConfig config_;
  MetaNetwork* meta_;
  rl::DqnAgent* agent_;
  FeatureEncoder encoder_;
  Profiler profiler_;
  ResourceMonitor monitor_;

  std::deque<std::vector<double>> dynamic_history_;
  std::vector<double> static_features_;

  struct PendingDecision {
    std::vector<double> state;
    int action = 0;
    double cost_if_switched = 0.0;
  };
  std::optional<PendingDecision> pending_;
  std::size_t last_switch_iteration_ = 0;

  /// Long-range migration target (a full re-plan worth walking toward) and
  /// the number of steps taken, as a runaway guard.
  std::optional<partition::Partition> target_;
  std::size_t target_steps_ = 0;
  /// Ledger id of the decision round that set target_ (0 when the ledger is
  /// off); tags each migration step's switch-phase trace instants.
  std::uint64_t target_round_ = 0;

  struct Validation {
    partition::Partition previous;
    /// Mean seconds/iteration before the switch (lower is better).
    double period_before = 0.0;
    std::size_t switch_iteration = 0;
    /// Simulated instant the post-switch window opened.
    double window_start = -1.0;
    std::size_t samples = 0;
    /// Ledger record whose outcome this window decides (ledger enabled only).
    std::optional<std::uint64_t> ledger_id;
  };
  std::optional<Validation> validation_;

  /// A decided switch being shepherded through the executor's staged
  /// protocol. Armed before request_switch so a synchronous Commit sees it;
  /// cleared on Commit (validation/probe arming moves there — an aborted
  /// attempt must not be validated) or on abandonment/supersession.
  struct TrackedSwitch {
    TrackedSwitch(partition::Partition t, partition::Partition prev,
                  double period = 0.0, bool arm = false)
        : target(std::move(t)),
          previous(std::move(prev)),
          period_before(period),
          arm_validation(arm) {}
    partition::Partition target;
    partition::Partition previous;   ///< revert destination if validated out
    double period_before = 0.0;
    bool arm_validation = false;
    std::size_t attempts = 1;        ///< request_switch calls issued so far
    bool retry_scheduled = false;
    std::optional<std::uint64_t> ledger_id;
    pipeline::SwitchPhase last_abort_phase =
        pipeline::SwitchPhase::kIdle;
  };
  std::optional<TrackedSwitch> tracked_switch_;
  std::uint64_t switch_observer_token_ = 0;
  /// Bumped whenever tracked_switch_ is consumed; orphans scheduled retries.
  std::uint64_t retry_epoch_ = 0;

  std::size_t cooldown_until_ = 0;
  /// Consecutive reverted switches; drives exponential decision backoff so
  /// a mispredicting predictor cannot thrash a stable environment.
  std::size_t consecutive_reverts_ = 0;
  /// Rolling window of recent iteration periods (seconds), the baseline a
  /// switch is validated against.
  std::deque<double> recent_period_;
  /// Partitions that measured worse than predicted after adoption; skipped
  /// until the environment changes again.
  std::unordered_set<std::string> rejected_;

  std::vector<SpeedSample> adaptation_buffer_;
  Stats stats_;

  /// Open realized-speed measurement windows for ledger records: every hold
  /// decision, and switches that could not arm a validation window. Resolved
  /// after validation_window completed iterations, or superseded when the
  /// regime changes underneath them. Only populated while the ledger is
  /// enabled; a hold decision does NOT supersede earlier holds (the regime
  /// is unchanged), so a few probes overlap when decision_interval <
  /// validation_window.
  struct LedgerProbe {
    std::uint64_t id = 0;
    bool switched = false;
    std::size_t decision_iteration = 0;
    double window_start = -1.0;
    std::size_t samples = 0;
  };
  std::vector<LedgerProbe> probes_;

  // --- Watchdog / fault-recovery state ---
  bool watchdog_armed_ = false;
  /// Whether a tick has ever observed the executor running (distinguishes
  /// "run() not started yet" from "training finished").
  bool watchdog_saw_running_ = false;
  bool wedged_ = false;
  bool recovery_given_up_ = false;
  /// EMA of iteration periods (simulated seconds), the stall yardstick.
  double ema_period_ = 0.0;
  Seconds last_iteration_at_ = -1.0;
  Seconds last_progress_time_ = 0.0;
  std::size_t last_progress_iterations_ = 0;
  std::size_t recovery_attempts_ = 0;
  Seconds next_recovery_at_ = 0.0;
  std::vector<sim::WorkerId> excluded_workers_;
  /// Last good per-worker samples, substituted while the profiler feed for
  /// a worker is muted (fault-injected dropout).
  std::vector<BytesPerSec> held_bw_;
  std::vector<FlopsPerSec> held_speed_;
  std::vector<std::vector<Seconds>> held_fp_;
  std::vector<std::vector<Seconds>> held_bp_;
  std::vector<BytesPerSec> held_nic_bw_;
  /// Sorted owned-worker set (see set_owned_workers); every worker of the
  /// cluster when the config left owned_workers empty.
  std::vector<sim::WorkerId> owned_;
};

}  // namespace autopipe::core
