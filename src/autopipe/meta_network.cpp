#include "autopipe/meta_network.hpp"

#include "common/expect.hpp"
#include "nn/loss.hpp"

namespace autopipe::core {

namespace {

std::vector<std::size_t> head_widths(const MetaNetworkConfig& c) {
  std::vector<std::size_t> w;
  w.push_back(c.lstm_hidden + c.static_dim + c.partition_dim);
  for (std::size_t h : c.head_hidden) w.push_back(h);
  w.push_back(1);
  return w;
}

std::vector<nn::Parameter*> all_params(nn::Lstm& lstm, nn::Mlp& head) {
  auto params = lstm.parameters();
  for (nn::Parameter* p : head.parameters()) params.push_back(p);
  return params;
}

}  // namespace

MetaNetwork::MetaNetwork(MetaNetworkConfig config, std::uint64_t seed)
    : config_(config),
      lstm_([&] {
        Rng init(seed);
        return nn::Lstm(config_.dynamic_dim, config_.lstm_hidden, init);
      }()),
      head_([&] {
        Rng init(seed ^ 0xda3e39cb94b95bdbull);
        return nn::Mlp(head_widths(config_), nn::Activation::kRelu,
                       nn::Activation::kIdentity, init);
      }()),
      optimizer_(all_params(lstm_, head_), config_.learning_rate) {
  AUTOPIPE_EXPECT(config_.dynamic_dim > 0);
  AUTOPIPE_EXPECT(config_.static_dim > 0);
  AUTOPIPE_EXPECT(config_.partition_dim > 0);
}

nn::Matrix MetaNetwork::forward_one(const SpeedSample& sample) {
  AUTOPIPE_EXPECT(!sample.dynamic_seq.empty());
  AUTOPIPE_EXPECT(sample.static_feat.size() == config_.static_dim);
  AUTOPIPE_EXPECT(sample.partition_feat.size() == config_.partition_dim);

  std::vector<nn::Matrix> seq;
  seq.reserve(sample.dynamic_seq.size());
  for (const auto& step : sample.dynamic_seq) {
    AUTOPIPE_EXPECT(step.size() == config_.dynamic_dim);
    nn::Matrix x(1, config_.dynamic_dim);
    for (std::size_t i = 0; i < step.size(); ++i) x.at(0, i) = step[i];
    seq.push_back(std::move(x));
  }
  const nn::Matrix h = lstm_.forward(seq);

  nn::Matrix joint(1, config_.lstm_hidden + config_.static_dim +
                          config_.partition_dim);
  std::size_t c = 0;
  for (std::size_t i = 0; i < config_.lstm_hidden; ++i)
    joint.at(0, c++) = h.at(0, i);
  for (double v : sample.static_feat) joint.at(0, c++) = v;
  for (double v : sample.partition_feat) joint.at(0, c++) = v;
  return head_.forward(joint);
}

double MetaNetwork::predict(
    const std::vector<std::vector<double>>& dynamic_seq,
    const std::vector<double>& static_feat,
    const std::vector<double>& partition_feat) {
  SpeedSample s;
  s.dynamic_seq = dynamic_seq;
  s.static_feat = static_feat;
  s.partition_feat = partition_feat;
  ++predictions_;
  return forward_one(s).at(0, 0);
}

double MetaNetwork::train_batch(const std::vector<SpeedSample>& batch) {
  AUTOPIPE_EXPECT(!batch.empty());
  lstm_.zero_grad();
  head_.zero_grad();
  double total_loss = 0.0;
  for (const SpeedSample& sample : batch) {
    const nn::Matrix pred = forward_one(sample);
    nn::Matrix target(1, 1);
    target.at(0, 0) = sample.target;
    const nn::LossResult loss = nn::mse_loss(pred, target);
    total_loss += loss.value;
    // Backprop through the head, then split the joint-input gradient and
    // hand the LSTM its share.
    const nn::Matrix djoint = head_.backward(loss.grad);
    nn::Matrix dh(1, config_.lstm_hidden);
    for (std::size_t i = 0; i < config_.lstm_hidden; ++i)
      dh.at(0, i) = djoint.at(0, i);
    lstm_.backward(dh);
  }
  // Average the accumulated gradients over the batch.
  const double inv = 1.0 / static_cast<double>(batch.size());
  for (nn::Parameter* p : all_params(lstm_, head_)) p->grad *= inv;
  optimizer_.step();
  return total_loss / static_cast<double>(batch.size());
}

void MetaNetwork::begin_online_adaptation(double lr_scale) {
  AUTOPIPE_EXPECT(lr_scale > 0.0 && lr_scale <= 1.0);
  optimizer_.set_learning_rate(config_.learning_rate * lr_scale);
}

void MetaNetwork::save(std::ostream& os) const {
  lstm_.save(os);
  head_.save(os);
}

void MetaNetwork::load(std::istream& is) {
  lstm_.load(is);
  head_.load(is);
}

}  // namespace autopipe::core
