#include "autopipe/features.hpp"

#include <algorithm>

#include "common/expect.hpp"

namespace autopipe::core {

FeatureEncoder::FeatureEncoder(FeatureConfig config) : config_(config) {
  AUTOPIPE_EXPECT(config_.max_workers >= 1);
}

std::vector<double> FeatureEncoder::static_features(
    const ProfileSnapshot& snap) const {
  std::vector<double> f;
  f.push_back(static_cast<double>(snap.num_layers) / 64.0);
  f.push_back(static_cast<double>(snap.num_workers) /
              static_cast<double>(config_.max_workers));

  auto aggregate = [&](const std::vector<double>& xs, double scale) {
    double total = 0.0, mx = 0.0;
    for (double x : xs) {
      total += x;
      mx = std::max(mx, x);
    }
    f.push_back(total / scale / static_cast<double>(std::max<std::size_t>(
                                    1, xs.size())));  // mean
    f.push_back(mx / scale);                          // max
    f.push_back(total / scale / 16.0);                // total (damped)
  };
  aggregate(snap.activation_bytes, config_.bytes_scale);
  aggregate(snap.gradient_bytes, config_.bytes_scale);
  aggregate(snap.param_bytes, config_.bytes_scale);
  return f;
}

std::vector<double> FeatureEncoder::dynamic_features(
    const ProfileSnapshot& snap) const {
  std::vector<double> f;
  f.reserve(2 * config_.max_workers + 1);
  for (std::size_t w = 0; w < config_.max_workers; ++w) {
    f.push_back(w < snap.worker_bandwidth.size()
                    ? snap.worker_bandwidth[w] / config_.bandwidth_scale
                    : 0.0);
  }
  for (std::size_t w = 0; w < config_.max_workers; ++w) {
    f.push_back(w < snap.worker_speed.size()
                    ? snap.worker_speed[w] / config_.speed_scale
                    : 0.0);
  }
  f.push_back(snap.iteration_time / config_.time_scale);
  return f;
}

std::vector<double> FeatureEncoder::partition_features(
    const partition::Partition& partition, std::size_t num_layers) const {
  AUTOPIPE_EXPECT(num_layers > 0);
  std::vector<double> f(3 * config_.max_workers + 1, 0.0);
  for (std::size_t s = 0; s < partition.num_stages(); ++s) {
    const auto& stage = partition.stage(s);
    for (sim::WorkerId w : stage.workers) {
      if (w >= config_.max_workers) continue;
      f[3 * w + 0] = static_cast<double>(stage.first_layer) /
                     static_cast<double>(num_layers);
      f[3 * w + 1] = static_cast<double>(stage.last_layer + 1) /
                     static_cast<double>(num_layers);
      f[3 * w + 2] = static_cast<double>(stage.replication()) /
                     static_cast<double>(config_.max_workers);
    }
  }
  f.back() = static_cast<double>(partition.num_stages()) /
             static_cast<double>(config_.max_workers);
  return f;
}

std::vector<double> FeatureEncoder::arbiter_state(
    const ProfileSnapshot& snap, double current_speed_pred,
    double candidate_speed_pred, double switch_cost_pred,
    double iterations_since_switch) const {
  std::vector<double> f = dynamic_features(snap);
  f.push_back(normalize_throughput(current_speed_pred));
  f.push_back(normalize_throughput(candidate_speed_pred));
  f.push_back(normalize_throughput(candidate_speed_pred) -
              normalize_throughput(current_speed_pred));
  f.push_back(switch_cost_pred / config_.time_scale);
  f.push_back(std::min(iterations_since_switch, 50.0) / 50.0);
  return f;
}

std::size_t FeatureEncoder::static_dim() const { return 2 + 3 * 3; }

std::size_t FeatureEncoder::dynamic_dim() const {
  return 2 * config_.max_workers + 1;
}

std::size_t FeatureEncoder::partition_dim() const {
  return 3 * config_.max_workers + 1;
}

std::size_t FeatureEncoder::arbiter_dim() const {
  return dynamic_dim() + 5;
}

double FeatureEncoder::normalize_throughput(double samples_per_sec) const {
  return samples_per_sec / config_.throughput_scale;
}

double FeatureEncoder::denormalize_throughput(double normalized) const {
  return normalized * config_.throughput_scale;
}

}  // namespace autopipe::core
