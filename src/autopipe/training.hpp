// Offline training of AutoPipe's two learned components (§4.3 "offline
// training, online adapting"). Ground truth comes from the simulator: each
// speed sample is a short measured run of a randomized (environment,
// partition) pair, and arbiter episodes are randomized dynamic scenarios
// driven end-to-end through the controller with exploration on.
#pragma once

#include <cstddef>
#include <vector>

#include "autopipe/controller.hpp"
#include "autopipe/features.hpp"
#include "autopipe/meta_network.hpp"
#include "comm/framework.hpp"
#include "models/model.hpp"
#include "rl/dqn.hpp"

namespace autopipe::core {

struct ScenarioConfig {
  std::size_t num_servers = 5;
  std::size_t gpus_per_server = 2;
  /// Bandwidth grid the scenario sampler draws from (the paper's testbed
  /// speeds).
  std::vector<double> bandwidth_gbps = {10, 25, 40, 100};
  /// Max extra tenants per GPU.
  int max_extra_tenants = 2;
  /// Random neighbourhood moves applied to the PipeDream plan to diversify
  /// the partitions seen during training.
  std::size_t max_partition_perturbations = 4;
  comm::SyncScheme sync_scheme = comm::SyncScheme::kRing;
  comm::FrameworkProfile framework = comm::pytorch_profile();
  /// Iterations per measurement (after warmup).
  std::size_t measure_iterations = 4;
  std::size_t warmup_iterations = 2;
};

/// Generate `count` simulator-labelled speed samples.
std::vector<SpeedSample> generate_speed_dataset(
    const models::ModelSpec& model, std::size_t count, std::uint64_t seed,
    const FeatureEncoder& encoder, const ScenarioConfig& scenario = {});

struct TrainingResult {
  double train_loss = 0.0;
  double validation_loss = 0.0;
  std::size_t epochs = 0;
};

/// Train the meta-network on a dataset (90/10 train/validation split).
TrainingResult train_meta_network(MetaNetwork& meta,
                                  std::vector<SpeedSample> dataset,
                                  std::size_t epochs, std::size_t batch_size,
                                  std::uint64_t seed);

struct ArbiterTrainingResult {
  std::size_t episodes = 0;
  std::size_t total_switches = 0;
  double mean_episode_throughput = 0.0;
};

/// Run `episodes` randomized dynamic scenarios through the full controller
/// with epsilon-greedy exploration, teaching the arbiter when switching
/// pays. `meta` may be null (analytic predictor).
ArbiterTrainingResult train_arbiter_offline(
    rl::DqnAgent& agent, const models::ModelSpec& model,
    std::size_t episodes, std::size_t iterations_per_episode,
    std::uint64_t seed, MetaNetwork* meta = nullptr,
    const ScenarioConfig& scenario = {});

}  // namespace autopipe::core
