#include "autopipe/resource_monitor.hpp"

#include <cmath>
#include <sstream>

#include "common/expect.hpp"

namespace autopipe::core {

ResourceMonitor::ResourceMonitor(double relative_threshold, double ema_alpha,
                                 std::size_t persistence)
    : threshold_(relative_threshold),
      alpha_(ema_alpha),
      persistence_(persistence) {
  AUTOPIPE_EXPECT(threshold_ > 0.0);
  AUTOPIPE_EXPECT(alpha_ > 0.0 && alpha_ <= 1.0);
  AUTOPIPE_EXPECT(persistence_ >= 1);
}

ResourceChange ResourceMonitor::update(const ProfileSnapshot& snapshot) {
  ResourceChange change;
  if (!primed_) {
    bw_baseline_.assign(snapshot.worker_bandwidth.begin(),
                        snapshot.worker_bandwidth.end());
    speed_baseline_.assign(snapshot.worker_speed.begin(),
                           snapshot.worker_speed.end());
    primed_ = true;
    return change;
  }
  if (snapshot.worker_bandwidth.size() != bw_baseline_.size() ||
      snapshot.worker_speed.size() != speed_baseline_.size()) {
    // The worker set changed under us (a worker vanished or appeared
    // mid-window). That is itself a resource event: report it and re-prime
    // the baselines on the new population.
    bw_baseline_.assign(snapshot.worker_bandwidth.begin(),
                        snapshot.worker_bandwidth.end());
    speed_baseline_.assign(snapshot.worker_speed.begin(),
                           snapshot.worker_speed.end());
    consecutive_over_ = 0;
    change.changed = true;
    change.magnitude = 1.0;
    change.description = "worker population changed";
    return change;
  }

  std::ostringstream what;
  bool over_now = false;
  auto check = [&](std::vector<double>& baseline,
                   const std::vector<double>& now, const char* kind,
                   bool smooth) {
    for (std::size_t w = 0; w < baseline.size(); ++w) {
      if (baseline[w] <= 0.0) continue;
      const double rel = std::abs(now[w] - baseline[w]) / baseline[w];
      if (rel > change.magnitude) change.magnitude = rel;
      if (rel > threshold_) {
        over_now = true;
        what << kind << " change on worker " << w << " ("
             << baseline[w] << " -> " << now[w] << "); ";
      } else if (smooth && rel < 0.5 * threshold_) {
        // Track slow drift only while comfortably inside the band. Between
        // half and full threshold the baseline holds: a gradual step (e.g.
        // an EMA-smoothed profiler converging on new contention) must not
        // be absorbed by a chasing baseline.
        baseline[w] = alpha_ * now[w] + (1.0 - alpha_) * baseline[w];
      }
    }
  };
  check(bw_baseline_, snapshot.worker_bandwidth, "bandwidth", true);
  check(speed_baseline_, snapshot.worker_speed, "speed", true);

  consecutive_over_ = over_now ? consecutive_over_ + 1 : 0;
  if (consecutive_over_ >= persistence_) {
    change.changed = true;
    change.description = what.str();
    consecutive_over_ = 0;
    // Snap the baseline so one event is reported once.
    bw_baseline_.assign(snapshot.worker_bandwidth.begin(),
                        snapshot.worker_bandwidth.end());
    speed_baseline_.assign(snapshot.worker_speed.begin(),
                           snapshot.worker_speed.end());
  }
  return change;
}

void ResourceMonitor::reset() {
  primed_ = false;
  bw_baseline_.clear();
  speed_baseline_.clear();
}

}  // namespace autopipe::core
