#include "autopipe/switch_cost.hpp"

#include <algorithm>
#include <unordered_map>

#include "common/expect.hpp"
#include "nn/loss.hpp"

namespace autopipe::core {

SwitchCostEstimate analytic_switch_cost(
    const models::ModelSpec& model, const partition::Partition& from,
    const partition::Partition& to, const partition::EnvironmentView& env,
    Seconds current_batch_time, std::size_t in_flight,
    Seconds restage_overhead_per_layer) {
  SwitchCostEstimate est;

  // Migration volume: one weight version of every layer that gains a new
  // holder (the stash-ordered scheme transfers the latest version and
  // reconstructs the rest locally).
  BytesPerSec worst_bw = env.uniform_bandwidth();
  for (std::size_t layer = 0; layer < model.num_layers(); ++layer) {
    const auto& old_ws = from.stage(from.stage_of_layer(layer)).workers;
    const auto& new_ws = to.stage(to.stage_of_layer(layer)).workers;
    bool moved = false;
    for (sim::WorkerId w : new_ws) {
      if (std::find(old_ws.begin(), old_ws.end(), w) == old_ws.end()) {
        est.migration_bytes += model.param_bytes(layer);
        worst_bw = std::min(worst_bw, env.worker_bandwidth.at(w));
        moved = true;
      }
    }
    if (moved) ++est.moved_layers;
  }
  est.changed_workers = from.changed_workers(to).size();
  AUTOPIPE_EXPECT(worst_bw > 0.0);
  const Seconds transfer =
      est.migration_bytes / (worst_bw * env.comm_efficiency);

  // Stop-the-world: the pipeline drains (in_flight batches complete with no
  // refill), the transfer happens cold, and the restarted pipeline pays a
  // fill bubble of the same depth (Fig 2's startup state).
  est.stop_the_world =
      2.0 * static_cast<double>(in_flight) * current_batch_time + transfer;

  // Fine-grained: training continues; the visible cost is the per-layer
  // restaging on the affected workers plus the share of the transfer that
  // surfaces as contention-induced slowdown (the migration flow takes a
  // max-min fair share alongside roughly two training flows per link).
  constexpr double kContentionShare = 1.0 / 3.0;
  est.fine_grained =
      restage_overhead_per_layer * static_cast<double>(est.moved_layers) +
      kContentionShare * transfer;
  return est;
}

SwitchCostModel::SwitchCostModel(std::uint64_t seed)
    : net_([&] {
        Rng init(seed);
        return nn::Mlp({4, 16, 8, 1}, nn::Activation::kRelu,
                       nn::Activation::kIdentity, init);
      }()),
      optimizer_(net_.parameters(), 1e-3) {}

std::vector<double> SwitchCostModel::featurize(const SwitchCostEstimate& e) {
  return {
      e.migration_bytes / (512.0 * 1024 * 1024),
      static_cast<double>(e.changed_workers) / 16.0,
      static_cast<double>(e.moved_layers) / 64.0,
      e.stop_the_world,  // the analytic anchor
  };
}

Seconds SwitchCostModel::predict(const SwitchCostEstimate& estimate) {
  const auto f = featurize(estimate);
  nn::Matrix x(1, f.size());
  for (std::size_t i = 0; i < f.size(); ++i) x.at(0, i) = f[i];
  // A learned correction can under-shoot; cost is never negative.
  return std::max(0.0, net_.forward(x).at(0, 0));
}

double SwitchCostModel::train_batch(const std::vector<Sample>& batch) {
  AUTOPIPE_EXPECT(!batch.empty());
  net_.zero_grad();
  nn::Matrix x(batch.size(), 4);
  nn::Matrix y(batch.size(), 1);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const auto f = featurize(batch[i].estimate);
    for (std::size_t j = 0; j < f.size(); ++j) x.at(i, j) = f[j];
    y.at(i, 0) = batch[i].measured_stall;
  }
  const nn::Matrix pred = net_.forward(x);
  const nn::LossResult loss = nn::mse_loss(pred, y);
  net_.backward(loss.grad);
  optimizer_.step();
  return loss.value;
}

}  // namespace autopipe::core
