// Fig 2: PipeDream's ideal pipeline fill — startup state vs steady state —
// and the paper's Observation 3 that the ideal needs assumptions that fail
// in practice: (1) negligible communication, (2) uniform layer times,
// (3) FP exactly half of BP. We run the figure's 4-worker uniform pipeline
// in the ideal regime and then with realistic inter-stage communication,
// printing startup time, steady-state period and utilization at PipeDream's
// NOW and above it.
#include <iostream>

#include "bench_common.hpp"
#include "partition/analytic_eval.hpp"

using namespace autopipe;

namespace {

models::ModelSpec fig2_model() {
  // Four uniform layers; BP costs exactly twice FP, as drawn in the figure.
  std::vector<models::LayerSpec> specs;
  for (int l = 0; l < 4; ++l) {
    models::LayerSpec s;
    s.name = "layer" + std::to_string(l);
    s.fwd_flops_per_sample = 1e9;
    s.bwd_flops_per_sample = 2e9;
    s.activation_bytes_per_sample = 256.0 * 1024.0;  // 4 MiB per batch of 16
    s.param_bytes = 1e6;
    specs.push_back(std::move(s));
  }
  return models::ModelSpec("fig2-uniform", 16, std::move(specs));
}

void fill_table(double bandwidth_gbps, const std::string& title) {
  const auto model = fig2_model();
  const auto partition = partition::Partition::even_split(4, {0, 2, 4, 6});
  TextTable table({"in-flight", "startup time (s)", "steady period (s)",
                   "steady img/s", "utilization"});
  for (std::size_t in_flight : {4u, 5u, 6u}) {
    bench::Testbed testbed = bench::make_testbed(bandwidth_gbps);
    pipeline::ExecutorConfig config;
    config.framework.per_layer_overhead = 0.0;
    config.framework.comm_efficiency = 1.0;
    config.framework.compute_efficiency = 1.0;
    config.in_flight = in_flight;
    pipeline::PipelineExecutor executor(*testbed.cluster, model, partition,
                                        config);
    const auto report = executor.run(40, 20);
    const double startup = report.iteration_end_times.empty()
                               ? 0.0
                               : report.iteration_end_times.front();
    double steady_gap = 0.0;
    if (report.iteration_end_times.size() >= 2) {
      steady_gap =
          report.iteration_end_times.back() -
          report.iteration_end_times[report.iteration_end_times.size() - 2];
    }
    table.add_row({std::to_string(in_flight), TextTable::num(startup, 4),
                   TextTable::num(steady_gap, 4),
                   TextTable::num(report.throughput, 1),
                   TextTable::num(report.worker_utilization, 3)});
  }
  table.print(std::cout, title);
}

}  // namespace

int main(int argc, char** argv) {
  bench::parse_common_flags(argc, argv);
  fill_table(100,
             "Fig 2 (ideal) — 4 workers, FP = BP/2, negligible communication "
             "(100 Gbps)");
  std::cout << '\n';
  fill_table(5,
             "Fig 2 (practice) — same pipeline with real inter-stage "
             "communication (5 Gbps)");
  std::cout
      << "\nObservation 3: the ideal fill needs negligible communication, "
         "uniform layers and\nFP = BP/2. With real transfer times the steady "
         "period stretches beyond the compute\nbottleneck and utilization "
         "drops — extra in-flight batches recover only part of it.\n";
  return 0;
}
