// Fig 6: the reverse of Fig 5 — an old distributed job *finishes*, so
// resources increase. "Actual" keeps the plan computed under contention;
// "Optimal" re-plans for the now-exclusive cluster. Re-configuration pays
// off for resource increases too.
#include <algorithm>
#include <iostream>

#include "bench_common.hpp"

using namespace autopipe;
using bench::RunOptions;

namespace {

struct Pair {
  double actual = 0.0;
  double optimal = 0.0;
};

Pair measure(const models::ModelSpec& model, double bandwidth_gbps) {
  Pair out;
  // Plan under contention: a foreign distributed job holds servers 3-4
  // (half their NIC capacity, one extra tenant per GPU), and the planner
  // planned around it.
  auto contended_plan = [&] {
    bench::Testbed view = bench::make_testbed(bandwidth_gbps);
    for (std::size_t server : {3u, 4u}) {
      view.cluster->set_nic_bandwidth(
          server, view.cluster->nic_bandwidth(server) * 0.5);
      for (std::size_t g = 0; g < view.cluster->config().gpus_per_server; ++g)
        view.cluster->add_background_job(
            server * view.cluster->config().gpus_per_server + g);
    }
    return bench::plan_refined(view, model, comm::pytorch_profile(),
                               comm::SyncScheme::kRing);
  }();
  {
    // Actual: the old job left, but we keep the contended-era plan.
    bench::Testbed t = bench::make_testbed(bandwidth_gbps);
    out.actual = bench::run_pipeline(t, model, contended_plan.partition,
                                     RunOptions{})
                     .throughput;
  }
  {
    // Optimal: re-plan for the exclusive cluster.
    bench::Testbed t = bench::make_testbed(bandwidth_gbps);
    const auto plan = bench::plan_refined(t, model, comm::pytorch_profile(),
                                          comm::SyncScheme::kRing);
    out.optimal = bench::run_pipeline(t, model, plan.partition, RunOptions{})
                      .throughput;
  }
  // The "optimal" configuration is whichever of the two plans executes
  // better in the changed environment — an oracle never adopts a worse one.
  out.optimal = std::max(out.optimal, out.actual);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::parse_common_flags(argc, argv);
  {
    TextTable table({"model", "actual (img/s)", "optimal (img/s)",
                     "headroom"});
    for (const auto& model : models::image_models()) {
      const Pair p = measure(model, 25);
      table.add_row({model.name(), TextTable::num(p.actual, 1),
                     TextTable::num(p.optimal, 1),
                     TextTable::num(bench::speedup_pct(p.optimal, p.actual), 1) +
                         "%"});
    }
    table.print(std::cout,
                "Fig 6a — old distributed job finishes, model axis (25 Gbps)");
  }
  std::cout << '\n';
  {
    TextTable table({"network", "actual (img/s)", "optimal (img/s)",
                     "headroom"});
    const auto model = models::resnet50();
    for (double bw : bench::kBandwidthGridGbps) {
      const Pair p = measure(model, bw);
      table.add_row({TextTable::num(bw, 0) + "Gbps",
                     TextTable::num(p.actual, 1),
                     TextTable::num(p.optimal, 1),
                     TextTable::num(bench::speedup_pct(p.optimal, p.actual), 1) +
                         "%"});
    }
    table.print(std::cout,
                "Fig 6b — old distributed job finishes, network axis "
                "(ResNet50)");
  }
  std::cout << "\nPaper's shape: re-executing the work partition stays ahead "
               "of the stale configuration\neven when resources *increase*.\n";
  return 0;
}
