// Shared scaffolding for the figure benchmarks: the paper's testbed, the
// "three identical jobs" shared-cluster emulation, plan construction and
// standard measurement runs. Every fig*_ binary builds on these so the
// scenarios stay consistent across figures.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "autopipe/controller.hpp"
#include "baselines/data_parallel.hpp"
#include "comm/framework.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "models/zoo.hpp"
#include "partition/pipedream_planner.hpp"
#include "pipeline/executor.hpp"
#include "sim/cluster.hpp"
#include "sim/trace.hpp"

namespace autopipe::bench {

/// The paper's bandwidth grid.
inline const std::vector<double> kBandwidthGridGbps = {10, 25, 40, 100};

/// One self-contained simulated testbed instance.
struct Testbed {
  std::unique_ptr<sim::Simulator> simulator;
  std::unique_ptr<sim::Cluster> cluster;

  std::vector<sim::WorkerId> all_workers() const;
};

/// 5 servers x 2 P100 behind one switch at the given line rate. Tracing is
/// enabled on the testbed's simulator when `--trace` was parsed.
Testbed make_testbed(double bandwidth_gbps);

/// Parse the flags every fig benchmark shares (`--trace=PATH`,
/// `--metrics=PATH`, `--ledger=PATH`, `--timeseries=PATH[:INTERVAL]`,
/// `--profile=PATH`, `--jobs=N`). Call at the top of main(); unknown flags
/// are ignored so each benchmark may layer its own parsing on top.
void parse_common_flags(int argc, const char* const* argv);

/// Worker threads requested via `--jobs` (default 1; 0 = one per core).
std::size_t jobs();

/// Fan `body(0) .. body(count-1)` across the `--jobs` thread pool
/// (sweep::run_indexed). Each body must confine itself to per-index state
/// — build its own testbed, write slot i of a preallocated vector — and
/// emit nothing; the caller renders tables/stdout in index order
/// afterwards, so benchmark output is identical at any --jobs value.
void for_each_scenario(std::size_t count,
                       const std::function<void(std::size_t)>& body);

/// The `--trace` path captured by parse_common_flags; empty when unset.
const std::string& trace_path();

/// The `--metrics` path captured by parse_common_flags; empty when unset.
const std::string& metrics_path();

/// The `--ledger` path captured by parse_common_flags; empty when unset.
/// When set, every AutoPipe-controlled run records its decision ledger and
/// run_pipeline writes it next to the trace (scenario-spliced the same way;
/// analyze with `autopipe_trace decisions` / `calibration`).
const std::string& ledger_path();

/// The `--timeseries=PATH[:INTERVAL]` path captured by parse_common_flags;
/// empty when unset. When set, every run samples its metrics registry at
/// the interval (default 1 sim-second) and run_pipeline writes the
/// autopipe-ts-v1 series scenario-spliced like the trace (analyze with
/// `autopipe_trace timeseries`; see docs/TELEMETRY.md).
const std::string& timeseries_path();
double timeseries_interval();

/// The `--profile=PATH` path captured by parse_common_flags; empty when
/// unset. When set the host self-profiler records from flag parsing until
/// exit_status(), which writes the capture (autopipe-prof-v1, or Chrome
/// JSON for a .json path) before returning.
const std::string& profile_path();

/// `base` with ".<scenario>" spliced in before the extension
/// ("fig3.trace" + "vgg16_25gbps" -> "fig3.vgg16_25gbps.trace"); scenario
/// characters outside [A-Za-z0-9._-] become '_'. Returns `base` unchanged
/// when `scenario` is empty.
std::string scenario_path(const std::string& base,
                          const std::string& scenario);

/// Emulate `extra_jobs` co-located identical jobs (the paper runs three
/// identical jobs in every static experiment): each extra job adds one
/// tenant per GPU and one persistent cross-server flow per NIC, so both
/// compute and bandwidth are genuinely contended in the max-min sense.
void add_shared_jobs(Testbed& testbed, int extra_jobs);

/// PipeDream's one-shot plan: exclusive-GPU profile, uniform bandwidth.
partition::PlanResult plan_pipedream(const Testbed& testbed,
                                     const models::ModelSpec& model,
                                     const comm::FrameworkProfile& framework,
                                     comm::SyncScheme scheme);

/// The "Optimal" bar of Figs 3-6: the same DP re-solved against the current
/// environment view.
partition::PlanResult plan_current(const Testbed& testbed,
                                   const models::ModelSpec& model,
                                   const comm::FrameworkProfile& framework,
                                   comm::SyncScheme scheme);

/// plan_current followed by a neighbourhood descent under the integrated
/// per-worker model — "re-executing the work partition" with heterogeneity
/// (contended GPUs, uneven NICs) taken into account, which the count-based
/// DP alone cannot express.
partition::PlanResult plan_refined(const Testbed& testbed,
                                   const models::ModelSpec& model,
                                   const comm::FrameworkProfile& framework,
                                   comm::SyncScheme scheme);

struct RunOptions {
  comm::FrameworkProfile framework = comm::pytorch_profile();
  comm::SyncScheme scheme = comm::SyncScheme::kRing;
  std::size_t iterations = 40;
  std::size_t warmup = 10;
  /// Attach an AutoPipe controller (threshold arbiter + analytic
  /// integrated-model predictor — no pre-trained networks required, so the
  /// benches run out of the box; the RL/meta ablation bench swaps these).
  bool autopipe = false;
  std::size_t decision_interval = 3;
  /// Iteration-anchored resource events applied during the run.
  const sim::ResourceTrace* trace = nullptr;
  pipeline::ScheduleMode mode = pipeline::ScheduleMode::kAsync1F1B;
  std::size_t micro_batches = 4;
  /// Label naming this run within the benchmark ("vgg16_25gbps_autopipe").
  /// With `--trace=fig.trace`, each labelled run writes its own
  /// fig.<scenario>.trace instead of the runs overwriting one file; same
  /// for `--metrics`. Unlabelled runs keep overwrite-last-wins.
  std::string scenario;
};

struct RunResult {
  double throughput = 0.0;             // samples/sec
  std::vector<double> per_iteration;   // instantaneous series
  std::vector<double> end_times;       // completion instant per iteration
  std::size_t batch = 0;
  std::size_t switches = 0;
  double utilization = 0.0;

  /// Mean throughput between iterations [lo, hi) computed on elapsed
  /// simulated time (robust to completion bursts).
  double window_mean(std::size_t lo, std::size_t hi) const;
};

/// Execute `partition` on the testbed under the options.
RunResult run_pipeline(Testbed& testbed, const models::ModelSpec& model,
                       const partition::Partition& partition,
                       const RunOptions& options);

/// Vanilla data-parallel baseline over all workers.
double run_baseline(Testbed& testbed, const models::ModelSpec& model,
                    const RunOptions& options);

/// Percentage improvement of a over b.
double speedup_pct(double a, double b);

/// Run one labelled scenario body, catching any exception it throws: the
/// failure is reported on stderr with the label, counted, and the benchmark
/// continues with its remaining scenarios. Returns whether the body
/// succeeded. main() must end with `return bench::exit_status();` so a
/// throwing scenario fails the whole binary instead of vanishing into a
/// half-filled table.
bool run_scenario(const std::string& label,
                  const std::function<void()>& body);

/// 0 when every run_scenario body succeeded so far, 1 otherwise.
int exit_status();

}  // namespace autopipe::bench
