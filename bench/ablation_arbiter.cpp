// Ablation: the switch arbiter. Same dynamic scenario, four policies —
// never switch (static PipeDream), always switch on any predicted gain,
// a fixed-gain threshold, and the RL arbiter trained offline on randomized
// episodes. The RL policy's job is to beat "always" (which thrashes under
// churn) while staying close to the best fixed threshold without tuning.
#include <iostream>

#include "autopipe/training.hpp"
#include "bench_common.hpp"

using namespace autopipe;

namespace {

double run_policy(core::ControllerConfig::ArbiterMode mode,
                  rl::DqnAgent* agent, std::uint64_t scenario_seed) {
  const auto model = models::vgg16();
  bench::Testbed t = bench::make_testbed(25);
  const auto plan = bench::plan_pipedream(t, model, comm::pytorch_profile(),
                                          comm::SyncScheme::kRing);
  pipeline::PipelineExecutor executor(*t.cluster, model, plan.partition,
                                      pipeline::ExecutorConfig{});
  core::ControllerConfig cc;
  cc.arbiter_mode = mode;
  cc.use_meta_network = false;
  cc.decision_interval = 3;
  core::AutoPipeController controller(*t.cluster, executor, cc, nullptr,
                                      agent);
  controller.attach();

  // Regime changes that persist (the case re-configuration exists for),
  // with one short-lived dip that a good arbiter should ride out.
  (void)scenario_seed;
  sim::ResourceTrace trace;
  trace.at_iteration(12, sim::ResourceTrace::set_all_nic_bandwidth(gbps(10)));
  for (sim::WorkerId w : {0u, 1u, 2u, 3u})
    trace.at_iteration(40, sim::ResourceTrace::add_gpu_job(w));
  trace.at_iteration(64, sim::ResourceTrace::set_all_nic_bandwidth(gbps(8)));
  trace.at_iteration(70, sim::ResourceTrace::set_all_nic_bandwidth(gbps(10)));
  executor.set_iteration_callback([&](std::size_t iters) {
    trace.apply_iteration(iters, *t.cluster);
    controller.on_iteration(iters);
  });
  return executor.run(100, 20).throughput;
}

}  // namespace

int main(int argc, char** argv) {
  bench::parse_common_flags(argc, argv);
  // Train the RL arbiter offline on randomized episodes (analytic
  // predictor; small budget keeps the bench fast).
  const core::FeatureEncoder encoder;
  rl::DqnConfig dc;
  dc.state_dim = encoder.arbiter_dim();
  rl::DqnAgent agent(dc, 77);
  core::ScenarioConfig scenario;
  const auto training =
      core::train_arbiter_offline(agent, models::resnet50(), 24, 30, 99);
  agent.begin_online_adaptation();

  TextTable table({"arbiter", "throughput (img/s)"});
  table.add_row({"never switch (static)",
                 TextTable::num(run_policy(
                     core::ControllerConfig::ArbiterMode::kNeverSwitch,
                     nullptr, 5), 1)});
  table.add_row({"always switch",
                 TextTable::num(run_policy(
                     core::ControllerConfig::ArbiterMode::kAlwaysSwitch,
                     nullptr, 5), 1)});
  table.add_row({"threshold (5% gain)",
                 TextTable::num(run_policy(
                     core::ControllerConfig::ArbiterMode::kThreshold,
                     nullptr, 5), 1)});
  table.add_row({"RL (offline-trained)",
                 TextTable::num(run_policy(
                     core::ControllerConfig::ArbiterMode::kRl, &agent, 5),
                 1)});
  table.print(std::cout,
              "Ablation — switch arbiter under persistent regime changes "
              "(VGG16, 25 Gbps)");
  std::cout << "\n(offline training: " << training.episodes << " episodes, "
            << training.total_switches << " exploratory switches)\n";
  return 0;
}
