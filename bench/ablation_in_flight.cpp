// Ablation: the in-flight mini-batch count (PipeDream's NOW). Observation 3
// says the pipeline rarely fills at the textbook NOW because BP != FP and
// communication is not free; this sweep quantifies the fill/memory
// trade-off around the derived optimum for each model.
#include <iostream>

#include "bench_common.hpp"
#include "partition/analytic_eval.hpp"
#include "pipeline/memory.hpp"

using namespace autopipe;
using bench::RunOptions;

int main(int argc, char** argv) {
  bench::parse_common_flags(argc, argv);
  for (const auto& model : models::image_models()) {
    bench::Testbed planning = bench::make_testbed(25);
    const auto plan = bench::plan_pipedream(
        planning, model, comm::pytorch_profile(), comm::SyncScheme::kRing);
    const std::size_t now = partition::optimal_in_flight(plan.partition);

    TextTable table({"in-flight", "img/s", "utilization",
                     "peak stash (GB, worst worker)"});
    for (int delta : {-2, -1, 0, 1, 2, 4}) {
      if (static_cast<int>(now) + delta < 1) continue;
      const auto in_flight = static_cast<std::size_t>(
          static_cast<int>(now) + delta);
      bench::Testbed t = bench::make_testbed(25);
      pipeline::ExecutorConfig config;
      config.in_flight = in_flight;
      pipeline::PipelineExecutor executor(*t.cluster, model, plan.partition,
                                          config);
      const auto report = executor.run(120, 40);
      Bytes peak = 0.0;
      for (sim::WorkerId w : plan.partition.all_workers()) {
        peak = std::max(peak, pipeline::worker_memory_footprint(
                                  model, plan.partition, w,
                                  model.default_batch_size(),
                                  pipeline::ScheduleMode::kAsync1F1B,
                                  in_flight));
      }
      std::string label = std::to_string(in_flight);
      if (delta == 0) label += " (= NOW)";
      table.add_row({label, TextTable::num(report.throughput, 1),
                     TextTable::num(report.worker_utilization, 3),
                     TextTable::num(peak / 1e9, 2)});
    }
    table.print(std::cout,
                std::string("Ablation — in-flight sweep, ") + model.name() +
                    " (25 Gbps, PipeDream plan)");
    std::cout << '\n';
  }
  std::cout << "Observation 3 quantified: throughput saturates at or just "
               "above the derived NOW; every\nextra in-flight batch costs a "
               "full weight-stash copy plus activation memory.\n";
  return 0;
}
