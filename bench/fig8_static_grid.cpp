// Fig 8: the main static-allocation grid. Three identical jobs share the
// cluster; we measure one of them under every combination of model
// {ResNet50, VGG16, AlexNet}, (sync scheme, framework) in {(PS, TensorFlow),
// (PS, MXNet), (Ring, PyTorch)} and bandwidth {10, 25, 40, 100} Gbps, for
// three systems:
//   Baseline  — vanilla data parallelism in that framework/scheme,
//   PipeDream — static one-shot plan from the exclusive-GPU profile,
//   AutoPipe  — the same start, plus the profiling + re-partitioning loop
//               which discovers the *shared* cluster's real speeds.
#include <iostream>

#include "bench_common.hpp"

using namespace autopipe;
using bench::RunOptions;

namespace {

struct Cell {
  double baseline = 0.0;
  double pipedream = 0.0;
  double autopipe = 0.0;
};

Cell measure(const models::ModelSpec& model,
             const comm::FrameworkProfile& framework, comm::SyncScheme scheme,
             double bandwidth_gbps) {
  Cell cell;
  RunOptions options;
  options.framework = framework;
  options.scheme = scheme;
  // Long, identical measurement windows: the replicated-stage pipelines
  // oscillate slowly (round-robin x sync-gating beats), so short windows
  // alias the wave.
  options.iterations = 160;
  options.warmup = 40;
  {
    bench::Testbed t = bench::make_testbed(bandwidth_gbps);
    bench::add_shared_jobs(t, 2);
    cell.baseline = bench::run_baseline(t, model, options);
  }
  // PipeDream plans from its exclusive-GPU, uniform-bandwidth, ring-assumed
  // profile — oblivious to the two co-located jobs.
  const auto plan = [&] {
    bench::Testbed exclusive = bench::make_testbed(bandwidth_gbps);
    return bench::plan_pipedream(exclusive, model, framework,
                                 comm::SyncScheme::kRing);
  }();
  {
    bench::Testbed t = bench::make_testbed(bandwidth_gbps);
    bench::add_shared_jobs(t, 2);
    cell.pipedream =
        bench::run_pipeline(t, model, plan.partition, options).throughput;
  }
  {
    bench::Testbed t = bench::make_testbed(bandwidth_gbps);
    bench::add_shared_jobs(t, 2);
    RunOptions ap = options;
    ap.autopipe = true;
    cell.autopipe =
        bench::run_pipeline(t, model, plan.partition, ap).throughput;
  }
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  bench::parse_common_flags(argc, argv);
  struct Combo {
    const char* label;
    comm::FrameworkProfile framework;
    comm::SyncScheme scheme;
  };
  const Combo combos[] = {
      {"PS/TensorFlow", comm::tensorflow_profile(),
       comm::SyncScheme::kParameterServer},
      {"PS/MXNet", comm::mxnet_profile(), comm::SyncScheme::kParameterServer},
      {"Ring/PyTorch", comm::pytorch_profile(), comm::SyncScheme::kRing},
  };

  for (const auto& model : models::image_models()) {
    for (const Combo& combo : combos) {
      TextTable table({"bandwidth", "baseline", "PipeDream", "AutoPipe",
                       "AP vs base", "AP vs PD"});
      for (double bw : bench::kBandwidthGridGbps) {
        const Cell cell = measure(model, combo.framework, combo.scheme, bw);
        table.add_row(
            {TextTable::num(bw, 0) + "Gbps", TextTable::num(cell.baseline, 1),
             TextTable::num(cell.pipedream, 1),
             TextTable::num(cell.autopipe, 1),
             TextTable::num(bench::speedup_pct(cell.autopipe, cell.baseline),
                            0) +
                 "%",
             TextTable::num(bench::speedup_pct(cell.autopipe, cell.pipedream),
                            0) +
                 "%"});
      }
      table.print(std::cout, std::string("Fig 8 — ") + model.name() + ", " +
                                 combo.label +
                                 " (3 identical jobs, img/s)");
      std::cout << '\n';
    }
  }
  std::cout << "Paper's shape: AutoPipe > PipeDream in every cell (up to 89% "
               "in the paper);\nPS cells show larger AutoPipe gains than Ring "
               "(PipeDream's planner assumes Ring);\nResNet50 gains most "
               "(more layers -> finer re-partitioning).\n";
  return 0;
}
