// Crash-point matrix for the staged switch protocol: every protocol phase ×
// every fault kind × many seeds, each cell a full AutoPipe run in which a
// SwitchFaultPlan fires the fault exactly at that phase boundary of a
// deterministic mid-run partition switch. Invariants per cell and seed:
//
//   1. conservation — injected == completed + dropped + in-flight
//   2. consistency  — the executor ends in a consistent weight layout:
//                     every layer held, never half-transitioned
//   3. accounting   — attempts == committed + aborted; the ledger finalizes
//                     with exactly one terminal outcome per record
//   4. liveness     — the armed crash point actually fired, and abortable
//                     faults (preemption / link loss) injected before Commit
//                     really did abort the attempt
//   5. parity       — the run replays byte-identically under the heap and
//                     timing-wheel event queues (trace, ledger, metrics,
//                     time-series); divergences dump artifacts
//
//   chaos_switch [--seeds=N] [--seed0=N] [--iterations=N] [--artifacts=DIR]
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/ledger_reader.hpp"
#include "bench_common.hpp"
#include "common/expect.hpp"
#include "faults/switch_fault_plan.hpp"

using namespace autopipe;

namespace {

constexpr std::size_t kServers = 3;
constexpr std::size_t kGpusPerServer = 2;

using SwitchMode = pipeline::PipelineExecutor::SwitchMode;

struct Cell {
  SwitchMode mode;
  pipeline::SwitchPhase phase;
  faults::FaultEvent::Kind kind;
};

const char* mode_name(SwitchMode mode) {
  return mode == SwitchMode::kStopTheWorld ? "stw" : "fine";
}

const char* kind_name(faults::FaultEvent::Kind kind) {
  switch (kind) {
    case faults::FaultEvent::Kind::kGpuDown:
      return "gpu_down";
    case faults::FaultEvent::Kind::kLinkDown:
      return "link_down";
    case faults::FaultEvent::Kind::kStragglerBegin:
      return "straggler";
    case faults::FaultEvent::Kind::kProfilerDrop:
      return "profiler";
    default:
      return "?";
  }
}

/// Drain only exists under stop-the-world; fine-grained goes straight from
/// Prepare to Transfer.
std::vector<Cell> build_matrix() {
  const std::vector<faults::FaultEvent::Kind> kinds = {
      faults::FaultEvent::Kind::kGpuDown, faults::FaultEvent::Kind::kLinkDown,
      faults::FaultEvent::Kind::kStragglerBegin,
      faults::FaultEvent::Kind::kProfilerDrop};
  std::vector<Cell> matrix;
  for (const auto mode :
       {SwitchMode::kStopTheWorld, SwitchMode::kFineGrained}) {
    for (const auto phase :
         {pipeline::SwitchPhase::kPrepare, pipeline::SwitchPhase::kDrain,
          pipeline::SwitchPhase::kTransfer, pipeline::SwitchPhase::kCommit}) {
      if (phase == pipeline::SwitchPhase::kDrain &&
          mode == SwitchMode::kFineGrained)
        continue;
      for (const auto kind : kinds) matrix.push_back({mode, phase, kind});
    }
  }
  return matrix;
}

struct CellRun {
  std::string trace_text;
  std::string ledger_text;
  std::string metrics_text;
  std::string timeseries_text;
  pipeline::PipelineExecutor::FaultStats stats;
  std::size_t active = 0;
  std::size_t attempts = 0;
  std::size_t committed = 0;
  std::size_t aborted = 0;
  std::size_t retries = 0;
  std::size_t abandonments = 0;
  std::size_t shots = 0;
  bool layout_consistent = false;
  bool ledger_resolved = false;
};

CellRun run_cell(const Cell& cell, std::size_t seed, std::size_t iterations,
                 sim::EventQueueKind queue) {
  sim::Simulator simulator(queue);
  simulator.tracer().set_enabled(true);
  simulator.ledger().set_enabled(true);
  simulator.timeseries().configure(0.02);

  sim::ClusterConfig config;
  config.num_servers = kServers;
  config.gpus_per_server = kGpusPerServer;
  sim::Cluster cluster(simulator, config);

  const auto model = models::alexnet();

  pipeline::ExecutorConfig executor_config;
  executor_config.framework = comm::pytorch_profile();
  executor_config.sync_scheme = comm::SyncScheme::kRing;
  // Start from an even pipeline split (one stage per worker) rather than
  // the planner's single-stage data-parallel pick: with every layer
  // replicated everywhere a switch has nothing to move, and the Transfer
  // phase we want to crash would be empty.
  std::vector<sim::WorkerId> workers(cluster.num_workers());
  for (std::size_t w = 0; w < workers.size(); ++w)
    workers[w] = static_cast<sim::WorkerId>(w);
  pipeline::PipelineExecutor executor(
      cluster, model,
      partition::Partition::even_split(model.num_layers(), workers),
      executor_config);

  core::ControllerConfig cc;
  cc.arbiter_mode = core::ControllerConfig::ArbiterMode::kThreshold;
  cc.use_meta_network = false;
  // Recovery (below) completes before the first retry fires, so a retried
  // attempt can actually succeed instead of re-hitting a dead participant.
  cc.switch_retry_base_interval = 0.3;
  core::AutoPipeController controller(cluster, executor, cc, nullptr,
                                      nullptr);
  controller.attach();

  faults::SwitchFaultPlan switch_faults(cluster, executor);
  faults::SwitchCrashPoint point;
  point.phase = cell.phase;
  point.kind = cell.kind;
  point.nth_attempt = 1;  // hit the first attempt; let the retry through
  point.delay = 0.0005 * static_cast<double>(seed % 7);
  point.recover_after = 0.15 + 0.01 * static_cast<double>(seed % 4);
  switch_faults.add(point);

  // The harness switch rotates each stage onto the next stage's workers —
  // a valid layout where every worker serves a different layer range, so
  // the Transfer phase genuinely moves weights — requested mid-pipeline at
  // a seed-staggered instant.
  const double trigger = 0.08 + 0.004 * static_cast<double>(seed % 13);
  simulator.after(
      trigger,
      [&executor, mode = cell.mode] {
        const partition::Partition& cur = executor.current_partition();
        std::vector<partition::StageAssignment> stages = cur.stages();
        if (stages.size() > 1) {
          std::vector<sim::WorkerId> first = stages.front().workers;
          for (std::size_t s = 0; s + 1 < stages.size(); ++s)
            stages[s].workers = stages[s + 1].workers;
          stages.back().workers = std::move(first);
        }
        executor.request_switch(
            partition::Partition(std::move(stages), cur.num_layers()), mode);
      },
      "chaos_switch_trigger");

  const auto report = executor.run(iterations, /*warmup=*/5);
  (void)report;

  CellRun out;
  out.stats = executor.fault_stats();
  out.active = executor.active_batches();
  out.attempts = executor.switch_attempts();
  out.committed = executor.switches_performed();
  out.aborted = executor.switches_aborted();
  out.retries = controller.stats().switch_retries;
  out.abandonments = controller.stats().switch_abandonments;
  out.shots = switch_faults.fired().size();
  out.layout_consistent = executor.weight_layout_consistent();
  std::ostringstream ts;
  simulator.tracer().write_text(ts);
  out.trace_text = ts.str();
  simulator.ledger().finalize("run_end");
  out.ledger_resolved = simulator.ledger().all_resolved();
  std::ostringstream ls;
  simulator.ledger().write_text(ls);
  out.ledger_text = ls.str();
  std::ostringstream ms;
  for (const auto& [name, value] : simulator.metrics().all())
    ms << name << "=" << trace::format_double(value) << "\n";
  out.metrics_text = ms.str();
  simulator.timeseries().finalize(simulator.now(), simulator.metrics());
  std::ostringstream tss;
  simulator.timeseries().write_text(tss);
  out.timeseries_text = tss.str();
  return out;
}

std::string g_artifact_dir;

void dump_artifacts(const std::string& label, const CellRun& heap,
                    const CellRun& wheel) {
  if (g_artifact_dir.empty()) return;
  std::filesystem::create_directories(g_artifact_dir);
  const auto write = [&](const std::string& name, const std::string& text) {
    std::ofstream os(g_artifact_dir + "/" + label + "." + name);
    os << text;
  };
  write("heap.trace", heap.trace_text);
  write("wheel.trace", wheel.trace_text);
  write("heap.ledger", heap.ledger_text);
  write("wheel.ledger", wheel.ledger_text);
  write("heap.metrics", heap.metrics_text);
  write("wheel.metrics", wheel.metrics_text);
  write("heap.timeseries", heap.timeseries_text);
  write("wheel.timeseries", wheel.timeseries_text);
}

std::size_t flag(int argc, char** argv, const std::string& name,
                 std::size_t fallback) {
  const std::string prefix = "--" + name + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind(prefix, 0) == 0)
      return static_cast<std::size_t>(
          std::strtoull(a.c_str() + prefix.size(), nullptr, 10));
  }
  return fallback;
}

std::string flag_str(int argc, char** argv, const std::string& name,
                     const std::string& fallback) {
  const std::string prefix = "--" + name + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind(prefix, 0) == 0) return a.substr(prefix.size());
  }
  return fallback;
}

bool aborts_switches(faults::FaultEvent::Kind kind) {
  // Stragglers and profiler dropouts degrade, but only participant loss
  // interrupts the protocol.
  return kind == faults::FaultEvent::Kind::kGpuDown ||
         kind == faults::FaultEvent::Kind::kLinkDown;
}

}  // namespace

int main(int argc, char** argv) {
  bench::parse_common_flags(argc, argv);
  const std::size_t seeds = flag(argc, argv, "seeds", 50);
  const std::size_t seed0 = flag(argc, argv, "seed0", 1);
  const std::size_t iterations = flag(argc, argv, "iterations", 30);
  g_artifact_dir = flag_str(argc, argv, "artifacts", "");

  const std::vector<Cell> matrix = build_matrix();
  std::cout << "crash-point matrix: " << matrix.size() << " cells x " << seeds
            << " seeds x 2 event queues\n\n";

  TextTable table({"mode", "phase", "fault", "seeds", "shots", "aborts",
                   "commits", "retries", "abandons", "verdict"});
  // One slot per (cell, seed) so parallel bodies never share state; the
  // per-cell rows are aggregated serially afterwards.
  struct SeedOutcome {
    bool ok = false;
    std::size_t shots = 0;
    std::size_t aborts = 0;
    std::size_t commits = 0;
    std::size_t retries = 0;
    std::size_t abandons = 0;
  };
  std::vector<SeedOutcome> outcomes(matrix.size() * seeds);

  bench::for_each_scenario(matrix.size() * seeds, [&](std::size_t index) {
    const std::size_t c = index / seeds;
    const std::size_t s = index % seeds;
    const Cell& cell = matrix[c];
    const std::size_t seed = seed0 + s;
    const std::string label = std::string(mode_name(cell.mode)) + "_" +
                              pipeline::switch_phase_name(cell.phase) + "_" +
                              kind_name(cell.kind) + "_seed" +
                              std::to_string(seed);
    const bool ok = bench::run_scenario(label, [&] {
      const CellRun heap =
          run_cell(cell, seed, iterations, sim::EventQueueKind::kHeap);
      const CellRun wheel =
          run_cell(cell, seed, iterations, sim::EventQueueKind::kWheel);

      // 1. conservation
      AUTOPIPE_EXPECT_MSG(
          heap.stats.injected ==
              heap.stats.completed + heap.stats.dropped + heap.active,
          "mini-batch conservation: injected "
              << heap.stats.injected << " != completed "
              << heap.stats.completed << " + dropped " << heap.stats.dropped
              << " + in-flight " << heap.active);

      // 2. consistency — never half-transitioned
      AUTOPIPE_EXPECT_MSG(heap.layout_consistent,
                          "executor finished in an inconsistent weight "
                          "layout");

      // 3. accounting
      AUTOPIPE_EXPECT_MSG(
          heap.attempts == heap.committed + heap.aborted,
          "attempt accounting: " << heap.attempts << " attempts != "
              << heap.committed << " committed + " << heap.aborted
              << " aborted");
      AUTOPIPE_EXPECT_MSG(heap.ledger_resolved,
                          "ledger left non-terminal records after finalize");
      {
        std::istringstream in(heap.ledger_text);
        const trace::DecisionLedger parsed = analysis::read_ledger(in);
        std::ostringstream re;
        parsed.write_text(re);
        AUTOPIPE_EXPECT_MSG(re.str() == heap.ledger_text,
                            "ledger does not round-trip through the reader");
      }

      // 4. liveness — the crash point must have fired, and a participant
      // loss injected before Commit must have interrupted the attempt.
      AUTOPIPE_EXPECT_MSG(heap.shots >= 1,
                          "crash point never fired for this cell");
      if (aborts_switches(cell.kind) &&
          cell.phase != pipeline::SwitchPhase::kCommit) {
        AUTOPIPE_EXPECT_MSG(heap.aborted >= 1,
                            "participant loss at "
                                << pipeline::switch_phase_name(cell.phase)
                                << " did not abort the attempt");
      }

      // 5. heap/wheel parity
      const bool parity = heap.trace_text == wheel.trace_text &&
                          heap.ledger_text == wheel.ledger_text &&
                          heap.metrics_text == wheel.metrics_text &&
                          heap.timeseries_text == wheel.timeseries_text;
      if (!parity) dump_artifacts(label, heap, wheel);
      AUTOPIPE_EXPECT_MSG(parity,
                          "heap and wheel runs diverged (artifacts "
                              << (g_artifact_dir.empty() ? "disabled"
                                                         : g_artifact_dir)
                              << ")");

      outcomes[index].shots = heap.shots;
      outcomes[index].aborts = heap.aborted;
      outcomes[index].commits = heap.committed;
      outcomes[index].retries = heap.retries;
      outcomes[index].abandons = heap.abandonments;
    });
    outcomes[index].ok = ok;
  });

  std::size_t failed_cells = 0;
  for (std::size_t c = 0; c < matrix.size(); ++c) {
    const Cell& cell = matrix[c];
    std::size_t ok = 0, shots = 0, aborts = 0, commits = 0, retries = 0,
                abandons = 0;
    for (std::size_t s = 0; s < seeds; ++s) {
      const SeedOutcome& o = outcomes[c * seeds + s];
      ok += o.ok ? 1 : 0;
      shots += o.shots;
      aborts += o.aborts;
      commits += o.commits;
      retries += o.retries;
      abandons += o.abandons;
    }
    const bool all_ok = ok == seeds;
    if (!all_ok) ++failed_cells;
    table.add_row({mode_name(cell.mode),
                   pipeline::switch_phase_name(cell.phase),
                   kind_name(cell.kind),
                   std::to_string(ok) + "/" + std::to_string(seeds),
                   std::to_string(shots), std::to_string(aborts),
                   std::to_string(commits), std::to_string(retries),
                   std::to_string(abandons), all_ok ? "ok" : "FAIL"});
  }
  table.print(std::cout, "chaos switch — crash-point matrix");
  std::cout << "\n" << matrix.size() - failed_cells << "/" << matrix.size()
            << " cells passed\n";
  return bench::exit_status();
}
