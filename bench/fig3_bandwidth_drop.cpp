// Fig 3: impact of dynamically changing bandwidth on PipeDream. The job
// starts with exclusive bandwidth; mid-experiment the available bandwidth
// is halved. "Actual" keeps PipeDream's original work partition; "Optimal"
// re-executes the work partition for the halved environment. Panel (a)
// varies the model at 25 Gbps; panel (b) varies the network speed for
// VGG16 — the same axes as the paper.
#include <algorithm>
#include <iostream>

#include "bench_common.hpp"

using namespace autopipe;
using bench::RunOptions;

namespace {

struct Pair {
  double actual = 0.0;
  double optimal = 0.0;
};

Pair measure(const models::ModelSpec& model, double bandwidth_gbps) {
  Pair out;
  {
    // Actual: plan at full bandwidth, run at half.
    bench::Testbed t = bench::make_testbed(bandwidth_gbps);
    const auto plan = bench::plan_pipedream(t, model, comm::pytorch_profile(),
                                            comm::SyncScheme::kRing);
    t.cluster->set_all_nic_bandwidth(gbps(bandwidth_gbps / 2.0));
    RunOptions options;
    options.scenario = model.name() + "_" +
                       TextTable::num(bandwidth_gbps, 0) + "gbps_actual";
    out.actual = bench::run_pipeline(t, model, plan.partition, options)
                     .throughput;
  }
  {
    // Optimal: re-plan against the halved environment, run at half.
    bench::Testbed t = bench::make_testbed(bandwidth_gbps / 2.0);
    const auto plan = bench::plan_refined(t, model, comm::pytorch_profile(),
                                          comm::SyncScheme::kRing);
    RunOptions options;
    options.scenario = model.name() + "_" +
                       TextTable::num(bandwidth_gbps, 0) + "gbps_optimal";
    out.optimal = bench::run_pipeline(t, model, plan.partition, options)
                      .throughput;
  }
  // The "optimal" configuration is whichever of the two plans executes
  // better in the changed environment — an oracle never adopts a worse one.
  out.optimal = std::max(out.optimal, out.actual);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::parse_common_flags(argc, argv);
  {
    TextTable table({"model", "actual (img/s)", "optimal (img/s)",
                     "degradation"});
    for (const auto& model : models::image_models()) {
      Pair p;
      if (!bench::run_scenario(model.name() + "_25gbps",
                               [&] { p = measure(model, 25); }))
        continue;
      table.add_row({model.name(), TextTable::num(p.actual, 1),
                     TextTable::num(p.optimal, 1),
                     TextTable::num(bench::speedup_pct(p.optimal, p.actual), 1) +
                         "%"});
    }
    table.print(std::cout,
                "Fig 3a — bandwidth halved mid-training, model axis "
                "(25 Gbps -> 12.5 Gbps)");
  }
  std::cout << '\n';
  {
    TextTable table({"network", "actual (img/s)", "optimal (img/s)",
                     "degradation"});
    const auto model = models::vgg16();
    for (double bw : bench::kBandwidthGridGbps) {
      Pair p;
      if (!bench::run_scenario("vgg16_" + TextTable::num(bw, 0) + "gbps",
                               [&] { p = measure(model, bw); }))
        continue;
      table.add_row({TextTable::num(bw, 0) + "Gbps",
                     TextTable::num(p.actual, 1),
                     TextTable::num(p.optimal, 1),
                     TextTable::num(bench::speedup_pct(p.optimal, p.actual), 1) +
                         "%"});
    }
    table.print(std::cout,
                "Fig 3b — bandwidth halved mid-training, network axis "
                "(VGG16)");
  }
  std::cout << "\nPaper's shape: re-planning wins everywhere; degradation is "
               "worst on slow networks\n(up to 55% at 10 Gbps) and on "
               "communication-heavy models.\n";
  return bench::exit_status();
}
