// Fig 5: a new *distributed* training job joins the shared cluster —
// consuming both GPU time (one extra tenant per device) and bandwidth (one
// persistent flow per NIC). "Actual" keeps PipeDream's exclusive-era plan;
// "Optimal" re-plans for the shared environment.
#include <algorithm>
#include <iostream>

#include "bench_common.hpp"

using namespace autopipe;
using bench::RunOptions;

namespace {

struct Pair {
  double actual = 0.0;
  double optimal = 0.0;
};

/// The joining job is placed on servers 3 and 4 (fluctuations are
/// localized, §3.1): +1 tenant on their GPUs and half their NIC capacity.
void apply_join(bench::Testbed& t) {
  for (std::size_t server : {3u, 4u}) {
    t.cluster->set_nic_bandwidth(server,
                                 t.cluster->nic_bandwidth(server) * 0.5);
    for (std::size_t g = 0; g < t.cluster->config().gpus_per_server; ++g)
      t.cluster->add_background_job(server * t.cluster->config().gpus_per_server + g);
  }
}

Pair measure(const models::ModelSpec& model, double bandwidth_gbps) {
  Pair out;
  {
    bench::Testbed t = bench::make_testbed(bandwidth_gbps);
    const auto plan = bench::plan_pipedream(t, model, comm::pytorch_profile(),
                                            comm::SyncScheme::kRing);
    apply_join(t);  // the new distributed job arrives
    out.actual = bench::run_pipeline(t, model, plan.partition, RunOptions{})
                     .throughput;
  }
  {
    bench::Testbed t = bench::make_testbed(bandwidth_gbps);
    apply_join(t);
    // Re-plan with the heterogeneous contended environment visible.
    const auto plan = bench::plan_refined(t, model, comm::pytorch_profile(),
                                          comm::SyncScheme::kRing);
    out.optimal = bench::run_pipeline(t, model, plan.partition, RunOptions{})
                      .throughput;
  }
  // The "optimal" configuration is whichever of the two plans executes
  // better in the changed environment — an oracle never adopts a worse one.
  out.optimal = std::max(out.optimal, out.actual);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::parse_common_flags(argc, argv);
  {
    TextTable table({"model", "actual (img/s)", "optimal (img/s)",
                     "degradation"});
    for (const auto& model : models::image_models()) {
      const Pair p = measure(model, 25);
      table.add_row({model.name(), TextTable::num(p.actual, 1),
                     TextTable::num(p.optimal, 1),
                     TextTable::num(bench::speedup_pct(p.optimal, p.actual), 1) +
                         "%"});
    }
    table.print(std::cout,
                "Fig 5a — new distributed job joins, model axis (25 Gbps)");
  }
  std::cout << '\n';
  {
    TextTable table({"network", "actual (img/s)", "optimal (img/s)",
                     "degradation"});
    const auto model = models::resnet50();
    for (double bw : bench::kBandwidthGridGbps) {
      const Pair p = measure(model, bw);
      table.add_row({TextTable::num(bw, 0) + "Gbps",
                     TextTable::num(p.actual, 1),
                     TextTable::num(p.optimal, 1),
                     TextTable::num(bench::speedup_pct(p.optimal, p.actual), 1) +
                         "%"});
    }
    table.print(std::cout,
                "Fig 5b — new distributed job joins, network axis (ResNet50)");
  }
  std::cout << "\nPaper's shape: joint bandwidth+GPU contention causes the "
               "largest degradations\n(36-60% in the paper's ResNet50/100Gbps "
               "cell).\n";
  return 0;
}
