// Fig 13: AutoPipe-enhanced versions of other pipeline-parallel systems.
// BERT-48 (mini-batch 256) trains under DAPPLE, Chimera and PipeDream-2BW
// schedules; each is run vanilla (static even split — these systems target
// structurally uniform models) and AutoPipe-enhanced (the re-configuration
// loop attached), in a shared cluster where bandwidth degrades mid-run.
#include <iostream>

#include "bench_common.hpp"

using namespace autopipe;
using bench::RunOptions;

namespace {

double measure(pipeline::ScheduleMode mode, bool enhanced) {
  const auto model = models::bert48();
  bench::Testbed t = bench::make_testbed(100);
  bench::add_shared_jobs(t, 1);
  const auto partition = partition::Partition::even_split(
      model.num_layers(), t.all_workers());

  // Localized mid-run contention (fluctuations affect a few GPUs/links at a
  // time, §3.1): two servers lose half their bandwidth, then four GPUs gain
  // a co-located tenant.
  sim::ResourceTrace trace;
  trace.at_iteration(12, sim::ResourceTrace::set_nic_bandwidth(0, gbps(25)));
  trace.at_iteration(12, sim::ResourceTrace::set_nic_bandwidth(1, gbps(25)));
  for (sim::WorkerId w : {4u, 5u, 6u, 7u})
    trace.at_iteration(24, sim::ResourceTrace::add_gpu_job(w));

  RunOptions options;
  options.mode = mode;
  options.micro_batches = 8;
  options.autopipe = enhanced;
  options.trace = &trace;
  options.iterations = 80;
  options.warmup = 30;
  return bench::run_pipeline(t, model, partition, options).throughput;
}

}  // namespace

int main(int argc, char** argv) {
  bench::parse_common_flags(argc, argv);
  const std::pair<const char*, pipeline::ScheduleMode> systems[] = {
      {"DAPPLE", pipeline::ScheduleMode::kDapple},
      {"Chimera", pipeline::ScheduleMode::kChimera},
      {"PipeDream-2BW", pipeline::ScheduleMode::kTwoBW},
  };
  TextTable table({"system", "vanilla (seq/s)", "AutoPipe-enhanced (seq/s)",
                   "improvement"});
  for (const auto& [name, mode] : systems) {
    const double vanilla = measure(mode, false);
    const double enhanced = measure(mode, true);
    table.add_row({name, TextTable::num(vanilla, 1),
                   TextTable::num(enhanced, 1),
                   TextTable::num(bench::speedup_pct(enhanced, vanilla), 1) +
                       "%"});
  }
  table.print(std::cout,
              "Fig 13 — AutoPipe-enhanced pipeline systems, BERT-48 "
              "(batch 256, dynamic shared cluster)");
  std::cout << "\nPaper's shape: every AutoPipe-enhanced variant outperforms "
               "its vanilla counterpart\n(5-15% range in the paper's "
               "figure).\n";
  return 0;
}
