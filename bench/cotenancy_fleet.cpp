// Co-tenancy fleet figures: N concurrent AutoPipe jobs on one 4×2 fabric,
// one scripted preemption per run, swept over fleet size × arbiter policy.
// Produces the BENCH_cotenancy.json rows behind docs/COTENANCY.md —
// aggregate fleet throughput, Jain fairness vs. job count, and
// reconfiguration-storm (conflict) counts per arbiter policy.
//
// Each multi-job run also enforces the smoke invariant CI gates on: the
// preempted GPU's return is claimed by more than one controller, and the
// arbiter commits exactly one winning reconfiguration for it — one
// arbiter_grant event for that worker, every rival aborted through the
// rollback path.
//
//   cotenancy_fleet [--out=PATH] [--baseline=PATH] [--tolerance=FRAC]
//
// --baseline gates fleet_throughput per scenario label against a committed
// BENCH_cotenancy.json (default tolerance 0.10), exiting 1 on regression —
// same contract as the sweep baseline gate (docs/BENCHMARKS.md).
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/json.hpp"
#include "cluster/job_manager.hpp"
#include "cluster/jobs_spec.hpp"
#include "common/expect.hpp"
#include "common/flags.hpp"
#include "common/table.hpp"
#include "sim/cluster.hpp"
#include "sim/simulator.hpp"

using namespace autopipe;

namespace {

constexpr std::size_t kServers = 4;
constexpr std::size_t kGpusPerServer = 2;
/// The scripted preemption every scenario shares: this worker drops out
/// early and returns as a free GPU that every running job may claim.
constexpr sim::WorkerId kPreemptedWorker = 1;

struct FleetOutcome {
  std::string label;
  std::size_t jobs = 0;
  std::string policy;
  cluster::FleetReport report;
  /// arbiter_grant events for the preempted worker (smoke invariant: == 1
  /// for every multi-job scenario).
  std::size_t preempt_grants = 0;
};

FleetOutcome run_fleet(std::size_t njobs, const std::string& policy) {
  sim::Simulator simulator;
  simulator.tracer().set_enabled(true);

  sim::ClusterConfig cluster_config;
  cluster_config.num_servers = kServers;
  cluster_config.gpus_per_server = kGpusPerServer;
  sim::Cluster cluster(simulator, cluster_config);

  // Mixed-model fleet with spread priorities so the three policies
  // genuinely disagree about winners.
  static constexpr const char* kModels[] = {"alexnet", "vgg16", "resnet18",
                                            "alexnet"};
  // The heavy, slow-gaining vgg16 job gets the top priority so greedy
  // (gain-max) and priority (priority-max) disagree about winners.
  static constexpr double kPriorities[] = {1.0, 4.0, 2.0, 1.5};
  static constexpr std::size_t kIterations[] = {30, 15, 25, 20};

  cluster::FleetSpec fleet;
  fleet.arbiter = policy;
  for (std::size_t k = 0; k < njobs; ++k) {
    cluster::JobSpec job;
    job.model = kModels[k % 4];
    job.iterations = kIterations[k % 4];
    job.warmup = 5;
    job.priority = kPriorities[k % 4];
    fleet.jobs.push_back(std::move(job));
  }
  cluster::PreemptSpec preempt;
  preempt.worker = kPreemptedWorker;
  preempt.at = 0.8;
  preempt.duration = 1.0;
  fleet.preempts.push_back(preempt);
  cluster::assign_default_workers(fleet, cluster.num_workers());

  cluster::JobManager manager(simulator, cluster, fleet);

  FleetOutcome out;
  out.jobs = njobs;
  out.policy = policy;
  out.label = "J" + std::to_string(njobs) + "." + policy;
  out.report = manager.run();
  for (const trace::Event& ev : simulator.tracer().events()) {
    if (ev.name != "arbiter_grant") continue;
    const std::string* worker = ev.find_arg("worker");
    if (worker != nullptr &&
        *worker == std::to_string(kPreemptedWorker))
      ++out.preempt_grants;
  }
  return out;
}

void write_json(const std::vector<FleetOutcome>& outcomes, std::ostream& os) {
  analysis::JsonWriter json(os);
  json.begin_object();
  json.kv("schema", "autopipe-cotenancy-v1");
  json.kv("servers", kServers);
  json.kv("gpus_per_server", kGpusPerServer);
  json.kv("scenario_count", outcomes.size());
  json.key("scenarios");
  json.begin_array();
  for (const FleetOutcome& o : outcomes) {
    json.begin_object();
    json.kv("label", o.label);
    json.kv("jobs", o.jobs);
    json.kv("arbiter", o.policy);
    json.kv("fleet_throughput", o.report.fleet_throughput);
    json.kv("jain", o.report.jain);
    json.kv("claim_rounds", o.report.claim_rounds);
    json.kv("conflicts", o.report.conflicts);
    json.kv("grants", o.report.grants);
    json.kv("denials", o.report.denials);
    json.kv("contention_aborts", o.report.contention_aborts);
    json.kv("preempt_grants", o.preempt_grants);
    json.key("job_throughputs");
    json.begin_array();
    for (const auto& j : o.report.jobs) json.value(j.report.throughput);
    json.end();
    json.end();
  }
  json.end();
  json.end();
  os << "\n";
}

/// Scrape label → fleet_throughput pairs off a committed
/// BENCH_cotenancy.json (our own write_json output: one key per line).
std::map<std::string, double> read_baseline(const std::string& path) {
  std::ifstream in(path);
  if (!in.good())
    throw std::runtime_error("cannot open baseline '" + path + "'");
  std::map<std::string, double> out;
  std::string line;
  std::string label;
  bool have_label = false;
  while (std::getline(in, line)) {
    std::string::size_type pos = line.find("\"label\":");
    if (pos != std::string::npos) {
      const std::string::size_type open = line.find('"', pos + 8);
      const std::string::size_type close =
          open == std::string::npos ? std::string::npos
                                    : line.find('"', open + 1);
      if (close == std::string::npos)
        throw std::runtime_error("malformed label line in '" + path + "'");
      label = line.substr(open + 1, close - open - 1);
      have_label = true;
      continue;
    }
    pos = line.find("\"fleet_throughput\":");
    if (pos == std::string::npos || !have_label) continue;
    std::string num = line.substr(pos + 19);
    if (!num.empty() && num.back() == ',') num.pop_back();
    out[label] = std::strtod(num.c_str(), nullptr);
    have_label = false;
  }
  if (out.empty())
    throw std::runtime_error("baseline '" + path +
                             "' holds no fleet_throughput entries");
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const std::string out_path = flags.get("out", "");
  const std::string baseline_path = flags.get("baseline", "");
  const double tolerance = flags.get_double("tolerance", 0.10);
  for (const std::string& flag : flags.unused())
    std::cerr << "warning: unknown flag --" << flag << "\n";

  std::vector<FleetOutcome> outcomes;
  int failures = 0;
  for (const std::size_t njobs : {std::size_t{1}, std::size_t{2},
                                  std::size_t{4}}) {
    for (const char* policy : {"greedy", "priority", "auction"}) {
      // A one-job fleet has no contention to arbitrate; keep one row.
      if (njobs == 1 && std::string(policy) != "greedy") continue;
      try {
        outcomes.push_back(run_fleet(njobs, policy));
      } catch (const std::exception& e) {
        std::cerr << "cotenancy_fleet: J" << njobs << "." << policy
                  << " FAILED: " << e.what() << "\n";
        ++failures;
      }
    }
  }

  TextTable table({"fleet", "samples/s", "jain", "rounds", "conflicts",
                   "grants", "aborts", "preempt grants"});
  for (const FleetOutcome& o : outcomes) {
    table.add_row({o.label, TextTable::num(o.report.fleet_throughput, 1),
                   TextTable::num(o.report.jain, 4),
                   std::to_string(o.report.claim_rounds),
                   std::to_string(o.report.conflicts),
                   std::to_string(o.report.grants),
                   std::to_string(o.report.contention_aborts),
                   std::to_string(o.preempt_grants)});
  }
  table.print(std::cout, "cotenancy fleet");

  // Smoke invariant: in every multi-job fleet the preempted GPU's return
  // commits exactly one winning reconfiguration.
  for (const FleetOutcome& o : outcomes) {
    if (o.jobs < 2) continue;
    if (o.preempt_grants != 1) {
      std::cerr << "cotenancy_fleet: " << o.label << ": expected exactly one "
                << "arbiter grant for the preempted worker, saw "
                << o.preempt_grants << "\n";
      ++failures;
    }
    if (o.report.conflicts > 0 && o.report.contention_aborts == 0) {
      std::cerr << "cotenancy_fleet: " << o.label << ": conflicts resolved "
                << "without any contention abort\n";
      ++failures;
    }
  }

  if (!out_path.empty()) {
    std::ofstream out(out_path);
    if (!out.good()) {
      std::cerr << "cotenancy_fleet: cannot open --out file: " << out_path
                << "\n";
      return 2;
    }
    write_json(outcomes, out);
    std::cout << "wrote " << out_path << "\n";
  }

  if (!baseline_path.empty()) {
    std::map<std::string, double> baseline;
    try {
      baseline = read_baseline(baseline_path);
    } catch (const std::exception& e) {
      std::cerr << "cotenancy_fleet: " << e.what() << "\n";
      return 2;
    }
    std::map<std::string, const FleetOutcome*> by_label;
    for (const FleetOutcome& o : outcomes) by_label[o.label] = &o;
    std::size_t compared = 0;
    for (const auto& [label, expected] : baseline) {
      const auto it = by_label.find(label);
      if (it == by_label.end()) {
        std::cerr << "cotenancy gate: scenario '" << label
                  << "' missing from this run\n";
        ++failures;
        continue;
      }
      ++compared;
      const double measured = it->second->report.fleet_throughput;
      if (measured < expected * (1.0 - tolerance)) {
        std::cerr << "cotenancy gate: " << label << ": "
                  << TextTable::num(measured, 1) << " samples/s below "
                  << "baseline " << TextTable::num(expected, 1) << " - "
                  << TextTable::num(tolerance * 100, 1) << "%\n";
        ++failures;
      }
    }
    std::cout << "cotenancy gate: " << compared
              << " scenario(s) compared against " << baseline_path << "\n";
  }

  if (failures > 0) {
    std::cerr << "cotenancy_fleet: " << failures << " failure(s)\n";
    return 1;
  }
  return 0;
}
