// Fig 10: training under dynamic GPU availability. ResNet50, Ring/PyTorch
// at 25 Gbps. A local training job lands on every GPU at iteration 20 and
// another at iteration 40. PipeDream keeps its iteration-0 partition;
// AutoPipe re-configures around the contention.
#include <iostream>

#include "bench_common.hpp"

using namespace autopipe;
using bench::RunOptions;

namespace {

bench::RunResult run_series(bool autopipe_on) {
  const auto model = models::resnet50();
  bench::Testbed t = bench::make_testbed(25);
  const auto plan = bench::plan_pipedream(t, model, comm::pytorch_profile(),
                                          comm::SyncScheme::kRing);
  // Local training jobs land where the scheduler packs them — on a subset
  // of devices (fluctuations are localized, §3.1): five GPUs gain a tenant
  // at iteration 20; at iteration 40 three of those gain a second tenant.
  sim::ResourceTrace trace;
  for (sim::WorkerId w : {0u, 1u, 2u, 3u, 4u})
    trace.at_iteration(20, sim::ResourceTrace::add_gpu_job(w));
  for (sim::WorkerId w : {0u, 1u, 2u})
    trace.at_iteration(40, sim::ResourceTrace::add_gpu_job(w));

  RunOptions options;
  options.autopipe = autopipe_on;
  options.trace = &trace;
  options.iterations = 60;
  options.warmup = 5;
  return bench::run_pipeline(t, model, plan.partition, options);
}

}  // namespace

int main(int argc, char** argv) {
  bench::parse_common_flags(argc, argv);
  const auto pipedream = run_series(false);
  const auto autopipe = run_series(true);

  TextTable table({"iteration", "PipeDream (img/s)", "AutoPipe (img/s)"});
  for (std::size_t i = 4; i < pipedream.end_times.size(); i += 5) {
    table.add_row({std::to_string(i + 1),
                   TextTable::num(pipedream.window_mean(i - 4, i + 1), 1),
                   TextTable::num(autopipe.window_mean(i - 4, i + 1), 1)});
  }
  table.print(std::cout,
              "Fig 10 — ResNet50 under dynamic GPUs (5 GPUs busy@20, 3 of them doubly busy@40)");

  TextTable summary({"phase", "PipeDream", "AutoPipe", "speedup"});
  const std::pair<std::size_t, std::size_t> phases[] = {
      {5, 20}, {25, 40}, {45, 60}};
  const char* labels[] = {"exclusive", "5 busy GPUs", "3 doubly busy"};
  for (int p = 0; p < 3; ++p) {
    const double pd = pipedream.window_mean(phases[p].first,
                                            phases[p].second);
    const double ap = autopipe.window_mean(phases[p].first,
                                           phases[p].second);
    summary.add_row({labels[p], TextTable::num(pd, 1), TextTable::num(ap, 1),
                     TextTable::num(bench::speedup_pct(ap, pd), 0) + "%"});
  }
  std::cout << '\n';
  summary.print(std::cout, "Fig 10 — per-phase means");
  std::cout << "\nPaper's shape: AutoPipe leads throughout, and gains grow "
               "with more contending jobs;\ncompute contention hurts training "
               "speed more than bandwidth loss.\n";
  return 0;
}
