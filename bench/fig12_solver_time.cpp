// Fig 12: wall-clock computation time of worker-partition modelling —
// PipeDream's DP versus AutoPipe's meta-network candidate scoring and the
// RL arbiter's decision, on AlexNet / ResNet50 / VGG16. The paper's claim:
// the meta-network and RL model together cost less than the DP, and the
// whole AutoPipe partition calculation stays under one second.
#include <chrono>
#include <iostream>

#include "autopipe/features.hpp"
#include "autopipe/meta_network.hpp"
#include "bench_common.hpp"
#include "partition/neighborhood.hpp"
#include "partition/exhaustive.hpp"
#include "rl/dqn.hpp"

using namespace autopipe;

namespace {

double wall_seconds(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

}  // namespace

int main(int argc, char** argv) {
  bench::parse_common_flags(argc, argv);
  const core::FeatureEncoder encoder;
  core::MetaNetworkConfig mc;
  mc.dynamic_dim = encoder.dynamic_dim();
  mc.static_dim = encoder.static_dim();
  mc.partition_dim = encoder.partition_dim();
  core::MetaNetwork meta(mc, 7);

  rl::DqnConfig dc;
  dc.state_dim = encoder.arbiter_dim();
  rl::DqnAgent agent(dc, 11);

  TextTable table({"model", "candidates", "PipeDream DP (s)",
                   "meta-network (s)", "RL model (s)", "AutoPipe total (s)"});
  for (const auto& model : {models::alexnet(), models::resnet50(),
                            models::vgg16()}) {
    bench::Testbed t = bench::make_testbed(25);
    const auto env = partition::EnvironmentView::from_cluster(
        *t.cluster, comm::pytorch_profile(), comm::SyncScheme::kRing);

    // PipeDream's DP.
    partition::PipeDreamPlanner planner(model, env,
                                        model.default_batch_size());
    const auto plan = planner.plan(t.cluster->num_workers());
    const double dp_seconds = planner.last_solve_seconds();

    // AutoPipe: score the whole two-worker neighbourhood with the
    // meta-network (one forward pass per candidate).
    const auto candidates = partition::two_worker_candidates(plan.partition);
    const std::vector<std::vector<double>> seq(
        8, std::vector<double>(encoder.dynamic_dim(), 0.5));
    const std::vector<double> static_feat(encoder.static_dim(), 0.5);
    const double meta_seconds = wall_seconds([&] {
      for (const auto& candidate : candidates) {
        (void)meta.predict(seq, static_feat,
                           encoder.partition_features(candidate.partition,
                                                      model.num_layers()));
      }
    });

    // The arbiter's single decision.
    const std::vector<double> state(encoder.arbiter_dim(), 0.3);
    const double rl_seconds = wall_seconds([&] {
      for (int i = 0; i < 100; ++i) (void)agent.act(state, false);
    }) / 100.0;

    table.add_row({model.name(), std::to_string(candidates.size()),
                   TextTable::num(dp_seconds * 1e3, 3) + "ms",
                   TextTable::num(meta_seconds * 1e3, 3) + "ms",
                   TextTable::num(rl_seconds * 1e6, 1) + "us",
                   TextTable::num((meta_seconds + rl_seconds) * 1e3, 3) +
                       "ms"});
  }
  table.print(std::cout,
              "Fig 12 — worker-partition modelling time (host wall clock)");

  // The paper's headline comparison is against solving the *integrated*
  // model exactly (its validation: "the complicated model takes tens of
  // minutes"). The integrated model has per-worker identities, so exact
  // solving is exponential; we demonstrate the blow-up on truncated layer
  // counts of the AlexNet profile.
  {
    TextTable blowup({"layers", "exact integrated-model search (s)"});
    bench::Testbed t = bench::make_testbed(25);
    const auto env = partition::EnvironmentView::from_cluster(
        *t.cluster, comm::pytorch_profile(), comm::SyncScheme::kRing);
    const auto alex = models::alexnet();
    for (std::size_t layers : {6u, 8u, 10u, 11u}) {
      std::vector<models::LayerSpec> prefix(
          alex.layers().begin(),
          alex.layers().begin() + static_cast<std::ptrdiff_t>(layers));
      const models::ModelSpec truncated("alexnet-prefix", 256,
                                        std::move(prefix));
      const double seconds = wall_seconds([&] {
        (void)partition::exhaustive_best(truncated, env, 256, 6, 14);
      });
      blowup.add_row({std::to_string(layers), TextTable::num(seconds, 3)});
    }
    std::cout << '\n';
    blowup.print(std::cout,
                 "Fig 12 (context) — exact search over the integrated model "
                 "grows exponentially");
  }
  std::cout << "\nPaper's shape: AutoPipe's meta-network + RL decision stays "
               "in milliseconds, while exactly\nsolving the integrated "
               "(per-worker) model blows up combinatorially — the paper "
               "reports tens\nof minutes. PipeDream's DP is only fast "
               "because its simplified model ignores per-worker\n"
               "heterogeneity (Observation 2).\n";
  return 0;
}
