// Ablation: the speed predictor. How accurate is the trained meta-network
// versus the analytic integrated model at ranking candidate partitions, and
// what does each cost per prediction? Ground truth is the simulator.
#include <algorithm>
#include <chrono>
#include <iostream>

#include "autopipe/training.hpp"
#include "bench_common.hpp"
#include "partition/analytic_eval.hpp"

using namespace autopipe;

int main(int argc, char** argv) {
  bench::parse_common_flags(argc, argv);
  const auto model = models::alexnet();
  // AlexNet throughput on the testbed is O(2000-5000) img/s; scale targets
  // to O(1) so the regression is well-conditioned.
  core::FeatureConfig fc;
  fc.throughput_scale = 5000.0;
  const core::FeatureEncoder encoder(fc);

  // Simulator-labelled dataset; train on 85%, evaluate on the rest.
  core::ScenarioConfig scenario;
  scenario.measure_iterations = 4;
  scenario.warmup_iterations = 2;
  auto dataset = core::generate_speed_dataset(model, 300, 2024, encoder,
                                              scenario);
  const std::size_t holdout = 40;
  std::vector<core::SpeedSample> eval(dataset.end() - holdout, dataset.end());
  dataset.resize(dataset.size() - holdout);

  core::MetaNetworkConfig mc;
  mc.dynamic_dim = encoder.dynamic_dim();
  mc.static_dim = encoder.static_dim();
  mc.partition_dim = encoder.partition_dim();
  core::MetaNetwork meta(mc, 5);
  const auto training = core::train_meta_network(meta, dataset, 60, 16, 3);

  // Meta-network accuracy (median absolute error on the holdout — robust
  // to the occasional out-of-distribution scenario) and latency.
  std::vector<double> abs_errors;
  const auto t0 = std::chrono::steady_clock::now();
  for (const auto& s : eval) {
    const double pred = meta.predict(s.dynamic_seq, s.static_feat,
                                     s.partition_feat);
    abs_errors.push_back(std::abs(pred - s.target));
  }
  const auto t1 = std::chrono::steady_clock::now();
  std::sort(abs_errors.begin(), abs_errors.end());
  const double meta_mae = abs_errors[abs_errors.size() / 2];
  const double meta_us =
      std::chrono::duration<double>(t1 - t0).count() / eval.size() * 1e6;

  // Analytic model error on the same scenarios: it sees the true
  // environment view, so its error isolates modelling (not profiling)
  // error. We recompute the label's scenario analytically by regenerating
  // matched scenarios (same seed stream).
  // For a like-for-like comparison we evaluate the analytic model on fresh
  // scenarios and compare predicted vs measured throughput.
  std::vector<double> analytic_errors;
  double analytic_us = 0.0;
  {
    Rng rng(777);
    const int n = 12;
    for (int i = 0; i < n; ++i) {
      bench::Testbed t = bench::make_testbed(
          bench::kBandwidthGridGbps[static_cast<std::size_t>(
              rng.uniform_int(0, 3))]);
      const auto plan = bench::plan_pipedream(t, model,
                                              comm::pytorch_profile(),
                                              comm::SyncScheme::kRing);
      const auto env = partition::EnvironmentView::from_cluster(
          *t.cluster, comm::pytorch_profile(), comm::SyncScheme::kRing);
      const auto a0 = std::chrono::steady_clock::now();
      const double predicted = partition::analytic_throughput(
          model, plan.partition, env, model.default_batch_size());
      const auto a1 = std::chrono::steady_clock::now();
      analytic_us += std::chrono::duration<double>(a1 - a0).count() * 1e6;
      const double measured =
          bench::run_pipeline(t, model, plan.partition, bench::RunOptions{})
              .throughput;
      analytic_errors.push_back(
          std::abs(encoder.normalize_throughput(predicted) -
                   encoder.normalize_throughput(measured)));
    }
    std::sort(analytic_errors.begin(), analytic_errors.end());
    analytic_us /= n;
  }
  const double analytic_mae = analytic_errors[analytic_errors.size() / 2];

  TextTable table(
      {"predictor", "median |error| (norm.)", "per-prediction"});
  table.add_row({"meta-network (trained)", TextTable::num(meta_mae, 4),
                 TextTable::num(meta_us, 1) + "us"});
  table.add_row({"analytic integrated model", TextTable::num(analytic_mae, 4),
                 TextTable::num(analytic_us, 2) + "us"});
  table.print(std::cout, "Ablation — speed predictor (AlexNet)");
  std::cout << "\n(meta-network training: " << training.epochs
            << " epochs, final train loss "
            << TextTable::num(training.train_loss, 4) << ", validation "
            << TextTable::num(training.validation_loss, 4) << ")\n"
            << "In this substrate the analytic model is unusually strong — "
               "the simulator shares its\ncost structure — so it sets a "
               "ceiling the meta-network approaches with data. On a\nreal "
               "testbed no such oracle exists, which is why the paper "
               "learns the predictor.\n";
  return 0;
}
