#include "bench_common.hpp"

#include <atomic>
#include <cctype>
#include <cstdlib>
#include <fstream>
#include <iostream>

#include "analysis/json.hpp"
#include "sweep/engine.hpp"
#include "analysis/report.hpp"
#include "analysis/trace_view.hpp"
#include "common/expect.hpp"
#include "common/profile.hpp"
#include "partition/analytic_eval.hpp"
#include "partition/neighborhood.hpp"

namespace autopipe::bench {

namespace {
std::string g_trace_path;
std::string g_metrics_path;
std::string g_ledger_path;
std::string g_timeseries_path;
double g_timeseries_interval = 1.0;
std::string g_profile_path;
std::size_t g_jobs = 1;

// "PATH[:INTERVAL]" — the suffix after the last ':' counts as an interval
// only when it parses fully as a positive number.
void set_timeseries_spec(const std::string& spec) {
  const std::string::size_type colon = spec.rfind(':');
  if (colon != std::string::npos && colon + 1 < spec.size()) {
    char* end = nullptr;
    const double v = std::strtod(spec.c_str() + colon + 1, &end);
    if (end != nullptr && *end == '\0' && v > 0.0) {
      g_timeseries_path = spec.substr(0, colon);
      g_timeseries_interval = v;
      return;
    }
  }
  g_timeseries_path = spec;
  g_timeseries_interval = 1.0;
}

bool wants_text_format(const std::string& path) {
  auto ends_with = [&path](const char* suffix) {
    const std::string s(suffix);
    return path.size() >= s.size() &&
           path.compare(path.size() - s.size(), s.size(), s) == 0;
  };
  return ends_with(".txt") || ends_with(".trace");
}
}  // namespace

void parse_common_flags(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind("--trace=", 0) == 0) {
      g_trace_path = a.substr(8);
    } else if (a == "--trace" && i + 1 < argc) {
      g_trace_path = argv[++i];
    } else if (a.rfind("--metrics=", 0) == 0) {
      g_metrics_path = a.substr(10);
    } else if (a == "--metrics" && i + 1 < argc) {
      g_metrics_path = argv[++i];
    } else if (a.rfind("--ledger=", 0) == 0) {
      g_ledger_path = a.substr(9);
    } else if (a == "--ledger" && i + 1 < argc) {
      g_ledger_path = argv[++i];
    } else if (a.rfind("--timeseries=", 0) == 0) {
      set_timeseries_spec(a.substr(13));
    } else if (a == "--timeseries" && i + 1 < argc) {
      set_timeseries_spec(argv[++i]);
    } else if (a.rfind("--profile=", 0) == 0) {
      g_profile_path = a.substr(10);
    } else if (a == "--profile" && i + 1 < argc) {
      g_profile_path = argv[++i];
    } else if (a.rfind("--jobs=", 0) == 0) {
      g_jobs = static_cast<std::size_t>(
          std::strtoull(a.c_str() + 7, nullptr, 10));
    } else if (a == "--jobs" && i + 1 < argc) {
      g_jobs = static_cast<std::size_t>(
          std::strtoull(argv[++i], nullptr, 10));
    }
  }
  if (!g_profile_path.empty()) {
    prof::reset();
    prof::set_enabled(true);
  }
}

std::size_t jobs() { return g_jobs; }

void for_each_scenario(std::size_t count,
                       const std::function<void(std::size_t)>& body) {
  sweep::run_indexed(count, g_jobs, body);
}

const std::string& trace_path() { return g_trace_path; }

const std::string& metrics_path() { return g_metrics_path; }

const std::string& ledger_path() { return g_ledger_path; }

const std::string& timeseries_path() { return g_timeseries_path; }

double timeseries_interval() { return g_timeseries_interval; }

const std::string& profile_path() { return g_profile_path; }

std::string scenario_path(const std::string& base,
                          const std::string& scenario) {
  if (scenario.empty()) return base;
  std::string label = scenario;
  for (char& c : label) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '.' &&
        c != '_' && c != '-') {
      c = '_';
    }
  }
  const std::size_t dot = base.rfind('.');
  const std::size_t slash = base.rfind('/');
  if (dot == std::string::npos ||
      (slash != std::string::npos && dot < slash)) {
    return base + "." + label;  // no extension to splice around
  }
  return base.substr(0, dot) + "." + label + base.substr(dot);
}

std::vector<sim::WorkerId> Testbed::all_workers() const {
  std::vector<sim::WorkerId> out(cluster->num_workers());
  for (sim::WorkerId w = 0; w < out.size(); ++w) out[w] = w;
  return out;
}

Testbed make_testbed(double bandwidth_gbps) {
  Testbed t;
  t.simulator = std::make_unique<sim::Simulator>();
  if (!g_trace_path.empty()) t.simulator->tracer().set_enabled(true);
  if (!g_ledger_path.empty()) t.simulator->ledger().set_enabled(true);
  if (!g_timeseries_path.empty())
    t.simulator->timeseries().configure(g_timeseries_interval);
  sim::ClusterConfig config;
  config.nic_bandwidth = gbps(bandwidth_gbps);
  t.cluster = std::make_unique<sim::Cluster>(*t.simulator, config);
  return t;
}

void add_shared_jobs(Testbed& testbed, int extra_jobs) {
  AUTOPIPE_EXPECT(extra_jobs >= 0);
  sim::Cluster& cluster = *testbed.cluster;
  const std::size_t servers = cluster.num_servers();
  const std::size_t gpus = cluster.config().gpus_per_server;
  // Co-located jobs land where the scheduler packs them, not uniformly:
  // job j occupies a contiguous block of 60% of the GPUs (offset per job)
  // and runs elephant flows between the servers it spans. The resulting
  // per-worker heterogeneity is exactly what PipeDream's exclusive-GPU,
  // uniform-bandwidth profile cannot see (Observation 2).
  const std::size_t total = cluster.num_workers();
  const std::size_t span = (total * 3 + 4) / 5;  // 60%, rounded up
  for (int j = 0; j < extra_jobs; ++j) {
    const std::size_t offset = (static_cast<std::size_t>(j) * 2 + 3) % total;
    for (std::size_t i = 0; i < span; ++i) {
      const sim::WorkerId w = (offset + i) % total;
      cluster.add_background_job(w);
    }
    const std::size_t first_server = offset / gpus;
    const std::size_t last_server = ((offset + span - 1) % total) / gpus;
    cluster.transfer(first_server * gpus, last_server * gpus, 1e18, nullptr);
    cluster.transfer(last_server * gpus, first_server * gpus, 1e18, nullptr);
  }
}

partition::PlanResult plan_pipedream(const Testbed& testbed,
                                     const models::ModelSpec& model,
                                     const comm::FrameworkProfile& framework,
                                     comm::SyncScheme scheme) {
  const auto env = partition::EnvironmentView::from_cluster(
      *testbed.cluster, framework, scheme);
  partition::PipeDreamPlanner planner(
      model, env, model.default_batch_size(),
      partition::PipeDreamPlanner::Mode::kPipeDream);
  return planner.plan(testbed.cluster->num_workers());
}

partition::PlanResult plan_current(const Testbed& testbed,
                                   const models::ModelSpec& model,
                                   const comm::FrameworkProfile& framework,
                                   comm::SyncScheme scheme) {
  const auto env = partition::EnvironmentView::from_cluster(
      *testbed.cluster, framework, scheme);
  partition::PipeDreamPlanner planner(
      model, env, model.default_batch_size(),
      partition::PipeDreamPlanner::Mode::kCurrentEnvironment);
  return planner.plan(testbed.cluster->num_workers());
}

partition::PlanResult plan_refined(const Testbed& testbed,
                                   const models::ModelSpec& model,
                                   const comm::FrameworkProfile& framework,
                                   comm::SyncScheme scheme) {
  const auto env = partition::EnvironmentView::from_cluster(
      *testbed.cluster, framework, scheme);
  partition::PlanResult plan = plan_current(testbed, model, framework, scheme);
  const std::size_t batch = model.default_batch_size();
  Seconds best = partition::analytic_batch_time(model, plan.partition, env,
                                                batch);
  for (int round = 0; round < 50; ++round) {
    bool improved = false;
    for (const auto& candidate :
         partition::two_worker_candidates(plan.partition)) {
      const Seconds t = partition::analytic_batch_time(model,
                                                       candidate.partition,
                                                       env, batch);
      if (t < best * 0.999) {
        best = t;
        plan.partition = candidate.partition;
        improved = true;
      }
    }
    if (!improved) break;
  }
  plan.in_flight = partition::optimal_in_flight(plan.partition);
  plan.predicted_batch_time = best;
  return plan;
}

RunResult run_pipeline(Testbed& testbed, const models::ModelSpec& model,
                       const partition::Partition& partition,
                       const RunOptions& options) {
  pipeline::ExecutorConfig config;
  config.framework = options.framework;
  config.sync_scheme = options.scheme;
  config.mode = options.mode;
  config.micro_batches = options.micro_batches;
  pipeline::PipelineExecutor executor(*testbed.cluster, model, partition,
                                      config);

  std::unique_ptr<core::AutoPipeController> controller;
  if (options.autopipe) {
    core::ControllerConfig cc;
    cc.arbiter_mode = core::ControllerConfig::ArbiterMode::kThreshold;
    cc.use_meta_network = false;
    cc.decision_interval = options.decision_interval;
    // Predicted gains below this floor are not worth a migration; measured
    // validation reverts mispredicted switches.
    cc.candidate_gain_floor = 0.02;
    cc.replan_on_change = true;
    controller = std::make_unique<core::AutoPipeController>(
        *testbed.cluster, executor, cc, nullptr, nullptr);
  }
  executor.set_iteration_callback([&](std::size_t iters) {
    if (options.trace)
      options.trace->apply_iteration(iters, *testbed.cluster);
    if (controller) controller->on_iteration(iters);
  });

  const auto report = executor.run(options.iterations, options.warmup);

  if (!g_trace_path.empty()) {
    // Figures run many scenarios on separate testbeds; a labelled run gets
    // its own fig.<scenario>.trace, an unlabelled one keeps the legacy
    // overwrite-last-wins behaviour on the given path.
    const std::string path = scenario_path(g_trace_path, options.scenario);
    std::ofstream out(path);
    if (out.good()) {
      if (wants_text_format(path)) {
        testbed.simulator->tracer().write_text(out);
      } else {
        testbed.simulator->tracer().write_chrome_json(out);
      }
      std::cout << "trace: " << testbed.simulator->tracer().size()
                << " events -> " << path << "\n";
    }
    TextTable metrics_table({"metric", "value"});
    for (const auto& [name, value] : testbed.simulator->metrics().all())
      metrics_table.add_row({name, TextTable::num(value, 3)});
    if (!testbed.simulator->metrics().all().empty())
      metrics_table.print(std::cout, "run metrics");

    // The analyzer runs straight off the in-memory recorder, so every
    // traced bench run reports where its GPU seconds went.
    const analysis::TraceView view(testbed.simulator->tracer().events());
    const analysis::RunAnalysis breakdown = analysis::analyze(view);
    std::cout << render_bubbles_text(breakdown) << '\n'
              << render_critical_path_text(breakdown, 5);
  }
  if (!g_metrics_path.empty()) {
    const std::string path = scenario_path(g_metrics_path, options.scenario);
    std::ofstream out(path);
    AUTOPIPE_EXPECT_MSG(out.good(), "cannot open metrics file " << path);
    analysis::write_scalar_map_json(testbed.simulator->metrics().all(), out);
    std::cout << "metrics: " << testbed.simulator->metrics().all().size()
              << " values -> " << path << "\n";
  }
  if (!g_ledger_path.empty()) {
    testbed.simulator->ledger().finalize("run_end");
    const std::string path = scenario_path(g_ledger_path, options.scenario);
    std::ofstream out(path);
    AUTOPIPE_EXPECT_MSG(out.good(), "cannot open ledger file " << path);
    testbed.simulator->ledger().write_text(out);
    std::cout << "ledger: " << testbed.simulator->ledger().size()
              << " decisions -> " << path << "\n";
  }
  if (testbed.simulator->timeseries().enabled()) {
    testbed.simulator->timeseries().finalize(testbed.simulator->now(),
                                             testbed.simulator->metrics());
    const std::string path =
        scenario_path(g_timeseries_path, options.scenario);
    std::ofstream out(path);
    AUTOPIPE_EXPECT_MSG(out.good(), "cannot open timeseries file " << path);
    testbed.simulator->timeseries().write_text(out);
    std::cout << "timeseries: " << testbed.simulator->timeseries().size()
              << " samples -> " << path << "\n";
  }

  RunResult result;
  result.throughput = report.throughput;
  result.per_iteration = report.iteration_throughput;
  result.end_times = report.iteration_end_times;
  result.batch = executor.batch_size();
  result.switches = executor.switches_performed();
  result.utilization = report.worker_utilization;
  return result;
}

double RunResult::window_mean(std::size_t lo, std::size_t hi) const {
  AUTOPIPE_EXPECT(lo < hi && hi <= end_times.size());
  const double start = lo == 0 ? 0.0 : end_times[lo - 1];
  const double span = end_times[hi - 1] - start;
  AUTOPIPE_EXPECT(span > 0.0);
  return static_cast<double>((hi - lo) * batch) / span;
}

double run_baseline(Testbed& testbed, const models::ModelSpec& model,
                    const RunOptions& options) {
  baselines::DataParallelConfig config;
  config.framework = options.framework;
  config.sync_scheme = options.scheme;
  return baselines::run_data_parallel(
             *testbed.cluster, model, testbed.all_workers(),
             options.iterations, options.warmup, config)
      .throughput;
}

double speedup_pct(double a, double b) {
  AUTOPIPE_EXPECT(b > 0.0);
  return (a / b - 1.0) * 100.0;
}

namespace {
// Atomic: scenario bodies may run concurrently under for_each_scenario.
std::atomic<std::size_t> g_failed_scenarios{0};
}

bool run_scenario(const std::string& label,
                  const std::function<void()>& body) {
  try {
    body();
    return true;
  } catch (const std::exception& e) {
    ++g_failed_scenarios;
    std::cerr << "scenario '" << label << "' failed: " << e.what() << "\n";
    return false;
  }
}

int exit_status() {
  if (!g_profile_path.empty()) {
    // Scenario workers joined inside for_each_scenario, so collect() is
    // safe by the time main() asks for its exit code.
    prof::set_enabled(false);
    const std::vector<prof::ThreadProfile> profiles = prof::collect();
    std::ofstream out(g_profile_path);
    if (out.good()) {
      const bool json =
          g_profile_path.size() >= 5 &&
          g_profile_path.rfind(".json") == g_profile_path.size() - 5;
      if (json) {
        prof::write_chrome_json(profiles, out);
      } else {
        prof::write_text(profiles, out);
      }
      std::cout << "profile: " << profiles.size() << " thread(s) -> "
                << g_profile_path << "\n";
    } else {
      std::cerr << "cannot open profile file " << g_profile_path << "\n";
    }
    g_profile_path.clear();  // idempotent if called twice
  }
  return g_failed_scenarios == 0 ? 0 : 1;
}

}  // namespace autopipe::bench
