// Ablation: fine-grained state switching (§4.4) vs the stop-the-world
// straw-man of §3.1. Same partitions, same switch points; only the
// migration mechanism differs. Fine-grained keeps the pipeline running by
// migrating the stash-ordered weight copies while training continues.
#include <iostream>

#include "bench_common.hpp"

using namespace autopipe;

namespace {

struct Outcome {
  double throughput = 0.0;
  double stall = 0.0;
};

Outcome run_with(pipeline::PipelineExecutor::SwitchMode mode) {
  const auto model = models::vgg16();
  bench::Testbed t = bench::make_testbed(25);
  const auto plan = bench::plan_pipedream(t, model, comm::pytorch_profile(),
                                          comm::SyncScheme::kRing);
  pipeline::PipelineExecutor executor(*t.cluster, model, plan.partition,
                                      pipeline::ExecutorConfig{});
  core::ControllerConfig cc;
  cc.arbiter_mode = core::ControllerConfig::ArbiterMode::kThreshold;
  cc.use_meta_network = false;
  cc.decision_interval = 3;
  cc.switch_mode = mode;
  core::AutoPipeController controller(*t.cluster, executor, cc, nullptr,
                                      nullptr);
  controller.attach();

  sim::ResourceTrace trace;
  trace.at_iteration(10, sim::ResourceTrace::set_all_nic_bandwidth(gbps(10)));
  trace.at_iteration(30, sim::ResourceTrace::set_all_nic_bandwidth(gbps(40)));
  executor.set_iteration_callback([&](std::size_t iters) {
    trace.apply_iteration(iters, *t.cluster);
    controller.on_iteration(iters);
  });
  const auto report = executor.run(50, 8);
  return Outcome{report.throughput, report.switch_stall};
}

}  // namespace

int main(int argc, char** argv) {
  bench::parse_common_flags(argc, argv);
  const Outcome fine =
      run_with(pipeline::PipelineExecutor::SwitchMode::kFineGrained);
  const Outcome stop =
      run_with(pipeline::PipelineExecutor::SwitchMode::kStopTheWorld);

  TextTable table({"switching", "throughput (img/s)",
                   "injection stall (s)"});
  table.add_row({"fine-grained (AutoPipe)", TextTable::num(fine.throughput, 1),
                 TextTable::num(fine.stall, 3)});
  table.add_row({"stop-the-world", TextTable::num(stop.throughput, 1),
                 TextTable::num(stop.stall, 3)});
  table.print(std::cout,
              "Ablation — state-switching mechanism (VGG16, two bandwidth "
              "changes)");
  std::cout << "\nFine-grained switching avoids the drain + refill bubble: "
            << TextTable::num(bench::speedup_pct(fine.throughput,
                                                 stop.throughput), 1)
            << "% higher throughput here.\n";
  return 0;
}
