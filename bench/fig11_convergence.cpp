// Fig 11: top-1 accuracy vs wall-clock time for AutoPipe, PipeDream, BSP
// and TAP on ResNet50 and VGG16.
//
// Two ingredients compose the figure, exactly as on the real testbed:
//  (1) system speed — each paradigm's steady-state iterations/sec measured
//      on the shared simulated cluster (BSP = synchronous flushing
//      schedule; PipeDream/TAP = async 1F1B; AutoPipe = 1F1B + the
//      re-configuration loop), and
//  (2) statistical efficiency — accuracy as a function of *update count*
//      under each paradigm's staleness semantics (BSP: none; PipeDream /
//      AutoPipe: bounded + consistent via weight stashing; TAP: unbounded
//      and inconsistent), from the staleness-aware SGD trainer.
// accuracy(t) = curve(iterations_per_sec x t).
#include <iostream>

#include "bench_common.hpp"
#include "convergence/dataset.hpp"
#include "convergence/staleness_sgd.hpp"

using namespace autopipe;
using bench::RunOptions;

namespace {

struct Paradigm {
  const char* name;
  pipeline::ScheduleMode mode;
  bool autopipe;
  convergence::StalenessMode staleness;
};

double measure_iters_per_sec(const models::ModelSpec& model,
                             const Paradigm& paradigm) {
  // The figure depicts 30-80 hours of training in a shared cluster, during
  // which resources fluctuate; the per-paradigm rate is measured over a
  // representative fluctuation cycle (bandwidth dips and recovers, local
  // jobs come and go).
  bench::Testbed t = bench::make_testbed(25);
  const auto plan = [&] {
    bench::Testbed exclusive = bench::make_testbed(25);
    return bench::plan_pipedream(exclusive, model, comm::pytorch_profile(),
                                 comm::SyncScheme::kRing);
  }();
  sim::ResourceTrace trace;
  trace.at_iteration(40, sim::ResourceTrace::set_all_nic_bandwidth(gbps(10)));
  for (sim::WorkerId w : {0u, 1u, 2u, 3u})
    trace.at_iteration(70, sim::ResourceTrace::add_gpu_job(w));
  trace.at_iteration(100,
                     sim::ResourceTrace::set_all_nic_bandwidth(gbps(25)));
  RunOptions options;
  options.mode = paradigm.mode;
  options.autopipe = paradigm.autopipe;
  options.trace = &trace;
  options.iterations = 130;
  options.warmup = 20;
  const double tput =
      bench::run_pipeline(t, model, plan.partition, options).throughput;
  return tput / static_cast<double>(model.default_batch_size());
}

}  // namespace

int main(int argc, char** argv) {
  bench::parse_common_flags(argc, argv);
  const Paradigm paradigms[] = {
      {"AutoPipe", pipeline::ScheduleMode::kAsync1F1B, true,
       convergence::StalenessMode::kWeightStashing},
      {"PipeDream", pipeline::ScheduleMode::kAsync1F1B, false,
       convergence::StalenessMode::kWeightStashing},
      {"BSP", pipeline::ScheduleMode::kGPipe, false,
       convergence::StalenessMode::kBsp},
      {"TAP", pipeline::ScheduleMode::kAsync1F1B, false,
       convergence::StalenessMode::kTotalAsync},
  };

  convergence::DatasetConfig dc;
  dc.dims = 12;
  dc.classes = 4;
  dc.noise = 1.1;
  const convergence::Dataset dataset(dc, 42);

  for (const auto& model : {models::resnet50(), models::vgg16()}) {
    // Statistical-efficiency curves (accuracy vs update count).
    const std::size_t total_steps = 4000;
    const std::size_t eval_every = 200;
    std::vector<std::vector<convergence::CurvePoint>> curves;
    std::vector<double> rates;
    for (const Paradigm& p : paradigms) {
      convergence::TrainerConfig tc;
      tc.mode = p.staleness;
      tc.pipeline_depth = 4;
      curves.push_back(convergence::accuracy_curve(dataset, tc, total_steps,
                                                   eval_every, 9));
      rates.push_back(measure_iters_per_sec(model, p));
    }

    TextTable table({"time (s)", "AutoPipe", "PipeDream", "BSP", "TAP"});
    // Time axis sized so the slowest paradigm completes its curve.
    double horizon = 0.0;
    for (std::size_t p = 0; p < 4; ++p)
      horizon = std::max(horizon,
                         static_cast<double>(total_steps) / rates[p]);
    for (int tick = 1; tick <= 8; ++tick) {
      const double time = horizon * tick / 8.0;
      std::vector<std::string> row{TextTable::num(time, 0)};
      for (std::size_t p = 0; p < 4; ++p) {
        const double steps_done = rates[p] * time;
        const auto& curve = curves[p];
        double acc = curve.back().accuracy;
        for (const auto& point : curve) {
          if (static_cast<double>(point.step) >= steps_done) {
            acc = point.accuracy;
            break;
          }
        }
        row.push_back(TextTable::num(acc * 100.0, 1) + "%");
      }
      table.add_row(std::move(row));
    }
    table.print(std::cout, std::string("Fig 11 — top-1 accuracy vs time, ") +
                               model.name());

    // Time-to-threshold summary (the paper's 1.53x / 3.13x / 1.95x bars).
    const double target = 0.9 * curves[0].back().accuracy;
    TextTable summary({"paradigm", "iters/sec", "converged acc",
                       "time to 90% of AutoPipe acc", "vs AutoPipe"});
    double autopipe_time = 0.0;
    for (std::size_t p = 0; p < 4; ++p) {
      double steps_needed = -1.0;
      for (const auto& point : curves[p]) {
        if (point.accuracy >= target) {
          steps_needed = static_cast<double>(point.step);
          break;
        }
      }
      const bool reached = steps_needed >= 0.0;
      const double time = reached ? steps_needed / rates[p] : 0.0;
      if (p == 0) autopipe_time = time;
      summary.add_row(
          {paradigms[p].name, TextTable::num(rates[p], 2),
           TextTable::num(curves[p].back().accuracy * 100.0, 1) + "%",
           reached ? TextTable::num(time, 0) + "s" : "never",
           reached ? TextTable::num(time / autopipe_time, 2) + "x" : "-"});
    }
    std::cout << '\n';
    summary.print(std::cout, std::string("Fig 11 — convergence summary, ") +
                                 model.name());
    std::cout << '\n';
  }
  std::cout << "Paper's shape: AutoPipe converges fastest (1.53x/3.13x/1.95x "
               "vs PipeDream/BSP/TAP on\nResNet50); AutoPipe, PipeDream and "
               "BSP reach the same accuracy; TAP plateaus lower.\n";
  return 0;
}
