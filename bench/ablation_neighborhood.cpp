// Ablation: AutoPipe's two-worker neighbourhood vs re-running the full DP
// on every resource change. The neighbourhood limits each reconfiguration
// to a cheap two-worker migration (gradual convergence to the optimum); the
// full re-plan may jump straight to the best shape but forces a much larger
// migration. We compare end throughput, switches and migrated state.
#include <iostream>

#include "autopipe/switch_cost.hpp"
#include "bench_common.hpp"

using namespace autopipe;

namespace {

struct Outcome {
  double throughput = 0.0;
  std::size_t switches = 0;
  double migrated_mb = 0.0;
};

/// Neighbourhood mode: the regular controller (threshold arbiter).
Outcome run_neighborhood() {
  const auto model = models::vgg16();
  bench::Testbed t = bench::make_testbed(25);
  const auto plan = bench::plan_pipedream(t, model, comm::pytorch_profile(),
                                          comm::SyncScheme::kRing);
  pipeline::PipelineExecutor executor(*t.cluster, model, plan.partition,
                                      pipeline::ExecutorConfig{});
  core::ControllerConfig cc;
  cc.arbiter_mode = core::ControllerConfig::ArbiterMode::kThreshold;
  cc.use_meta_network = false;
  cc.decision_interval = 3;
  cc.replan_on_change = false;  // pure two-worker moves in this arm
  core::AutoPipeController controller(*t.cluster, executor, cc, nullptr,
                                      nullptr);
  controller.attach();

  sim::ResourceTrace trace;
  trace.at_iteration(10, sim::ResourceTrace::set_all_nic_bandwidth(gbps(10)));
  double migrated = 0.0;
  partition::Partition previous = plan.partition;
  executor.set_iteration_callback([&](std::size_t iters) {
    trace.apply_iteration(iters, *t.cluster);
    controller.on_iteration(iters);
    if (!(executor.current_partition() == previous)) {
      partition::EnvironmentView env = partition::EnvironmentView::from_cluster(
          *t.cluster, comm::pytorch_profile(), comm::SyncScheme::kRing);
      migrated += core::analytic_switch_cost(model, previous,
                                             executor.current_partition(),
                                             env, 0.1, 10, millis(2))
                      .migration_bytes;
      previous = executor.current_partition();
    }
  });
  const auto report = executor.run(50, 20);
  return Outcome{report.throughput, executor.switches_performed(),
                 migrated / 1e6};
}

/// Full-replan mode: on the resource change, adopt the freshly-solved DP
/// plan wholesale (one big switch).
Outcome run_full_replan() {
  const auto model = models::vgg16();
  bench::Testbed t = bench::make_testbed(25);
  const auto plan = bench::plan_pipedream(t, model, comm::pytorch_profile(),
                                          comm::SyncScheme::kRing);
  pipeline::PipelineExecutor executor(*t.cluster, model, plan.partition,
                                      pipeline::ExecutorConfig{});
  sim::ResourceTrace trace;
  trace.at_iteration(10, sim::ResourceTrace::set_all_nic_bandwidth(gbps(10)));
  double migrated = 0.0;
  executor.set_iteration_callback([&](std::size_t iters) {
    trace.apply_iteration(iters, *t.cluster);
    if (iters == 12 && !executor.switch_in_progress()) {
      const auto replan = bench::plan_current(t, model,
                                              comm::pytorch_profile(),
                                              comm::SyncScheme::kRing);
      partition::EnvironmentView env = partition::EnvironmentView::from_cluster(
          *t.cluster, comm::pytorch_profile(), comm::SyncScheme::kRing);
      migrated += core::analytic_switch_cost(model,
                                             executor.current_partition(),
                                             replan.partition, env, 0.1, 10,
                                             millis(2))
                      .migration_bytes;
      executor.request_switch(
          replan.partition,
          pipeline::PipelineExecutor::SwitchMode::kFineGrained);
    }
  });
  const auto report = executor.run(50, 20);
  return Outcome{report.throughput, executor.switches_performed(),
                 migrated / 1e6};
}

}  // namespace

int main(int argc, char** argv) {
  bench::parse_common_flags(argc, argv);
  const Outcome nb = run_neighborhood();
  const Outcome full = run_full_replan();
  TextTable table({"strategy", "throughput (img/s)", "switches",
                   "migrated (MB)"});
  table.add_row({"two-worker neighbourhood", TextTable::num(nb.throughput, 1),
                 std::to_string(nb.switches), TextTable::num(nb.migrated_mb, 1)});
  table.add_row({"full DP re-plan", TextTable::num(full.throughput, 1),
                 std::to_string(full.switches),
                 TextTable::num(full.migrated_mb, 1)});
  table.print(std::cout,
              "Ablation — neighbourhood search vs full re-plan "
              "(VGG16, 25 Gbps -> 10 Gbps)");
  std::cout << "\nThe neighbourhood migrates gradually with small cheap "
               "switches, but hill-climbs into\nlocal optima when several "
               "stages degrade at once; the one-shot re-plan moves more\n"
               "state but lands on the globally better shape. AutoPipe's "
               "deployed controller therefore\ncombines both: re-plan on "
               "detected changes, neighbourhood fine-tuning in between.\n";
  return 0;
}
