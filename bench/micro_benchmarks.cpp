// Google-benchmark micro-benchmarks for the hot paths: the event engine,
// max-min re-rating, the DP planner, neighbourhood enumeration, meta-network
// inference and one executor iteration. These bound the runtime overhead
// AutoPipe adds to a training job (the paper reports < 1% CPU).
#include <benchmark/benchmark.h>

#include "autopipe/features.hpp"
#include "common/profile.hpp"
#include "autopipe/meta_network.hpp"
#include "models/zoo.hpp"
#include "partition/neighborhood.hpp"
#include "partition/pipedream_planner.hpp"
#include "pipeline/executor.hpp"
#include "sim/cluster.hpp"
#include "sim/flow_network.hpp"

using namespace autopipe;

namespace {

void BM_SimulatorEventChurn(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    int fired = 0;
    for (int i = 0; i < 1000; ++i)
      sim.at(static_cast<Seconds>(i) * 1e-3, [&fired] { ++fired; });
    sim.run();
    benchmark::DoNotOptimize(fired);
  }
}
BENCHMARK(BM_SimulatorEventChurn);

void BM_SimulatorFatCaptureChurn(benchmark::State& state) {
  // Captures past std::function's ~16-byte SBO but inside the simulator's
  // 48-byte inline budget — the case the small-buffer callback exists for.
  for (auto _ : state) {
    sim::Simulator sim;
    double acc = 0.0;
    for (int i = 0; i < 1000; ++i) {
      const double a = i * 1.0, b = i * 2.0, c = i * 3.0, d = i * 4.0;
      sim.at(static_cast<Seconds>(i) * 1e-3,
             [&acc, a, b, c, d] { acc += a + b + c + d; });
    }
    sim.run();
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_SimulatorFatCaptureChurn);

void BM_SimulatorFatCaptureChurnHeap(benchmark::State& state) {
  // The same workload pinned to the reference binary heap: the spread
  // between this and BM_SimulatorFatCaptureChurn is the timing wheel's
  // win, measured through the identical devirtualized Simulator path.
  for (auto _ : state) {
    sim::Simulator sim(sim::EventQueueKind::kHeap);
    double acc = 0.0;
    for (int i = 0; i < 1000; ++i) {
      const double a = i * 1.0, b = i * 2.0, c = i * 3.0, d = i * 4.0;
      sim.at(static_cast<Seconds>(i) * 1e-3,
             [&acc, a, b, c, d] { acc += a + b + c + d; });
    }
    sim.run();
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_SimulatorFatCaptureChurnHeap);

template <typename Queue>
void queue_churn(benchmark::State& state) {
  // Queue-only churn: isolates push/pop cost from Simulator bookkeeping
  // and callback execution. Steady-state mix — a warm backlog of 256
  // events, then interleaved push/pop pairs walking time forward.
  for (auto _ : state) {
    Queue q;
    std::uint64_t seq = 0;
    for (int i = 0; i < 256; ++i)
      q.push(sim::SimEvent{static_cast<Seconds>(i) * 1e-3, seq++, {}, nullptr});
    Seconds horizon = 0.256;
    for (int i = 0; i < 1000; ++i) {
      const sim::SimEvent ev = q.pop();
      benchmark::DoNotOptimize(ev.time);
      q.push(sim::SimEvent{horizon, seq++, {}, nullptr});
      horizon += 1e-3;
    }
    while (!q.empty()) benchmark::DoNotOptimize(q.pop().time);
  }
}

void BM_EventQueueHeap(benchmark::State& state) {
  queue_churn<sim::HeapEventQueue>(state);
}
BENCHMARK(BM_EventQueueHeap);

void BM_EventQueueWheel(benchmark::State& state) {
  queue_churn<sim::TimingWheelEventQueue>(state);
}
BENCHMARK(BM_EventQueueWheel);

void BM_FlowNetworkRerate(benchmark::State& state) {
  const auto flows = static_cast<std::size_t>(state.range(0));
  sim::Simulator sim;
  sim::FlowNetwork net(sim);
  std::vector<sim::ResourceId> resources;
  for (int i = 0; i < 10; ++i)
    resources.push_back(net.add_resource("r", 1e9));
  for (std::size_t f = 0; f < flows; ++f) {
    net.start_flow({{resources[f % 10], resources[(f + 3) % 10]}, 1e15,
                    nullptr});
  }
  std::size_t i = 0;
  for (auto _ : state) {
    // Each capacity change triggers a full max-min re-rate.
    net.set_capacity(resources[i % 10], (i % 2) ? 5e8 : 1e9);
    ++i;
  }
  state.SetLabel(std::to_string(flows) + " flows");
}
BENCHMARK(BM_FlowNetworkRerate)->Arg(8)->Arg(32)->Arg(128);

void BM_FlowNetworkRerateApprox(benchmark::State& state) {
  // The same capacity-churn workload in approximate mode: alternating
  // 1e9/5e8 swings exceed any epsilon, so every change still re-rates, but
  // flow start/completion churn between swings is where the mode saves —
  // here the measured quantity is the full-pass floor it cannot beat.
  const auto flows = static_cast<std::size_t>(state.range(0));
  sim::Simulator sim;
  sim::FlowNetwork net(sim);
  net.set_approximate_mode(true, 0.05);
  std::vector<sim::ResourceId> resources;
  for (int i = 0; i < 10; ++i)
    resources.push_back(net.add_resource("r", 1e9));
  for (std::size_t f = 0; f < flows; ++f) {
    net.start_flow({{resources[f % 10], resources[(f + 3) % 10]}, 1e15,
                    nullptr});
  }
  std::size_t i = 0;
  for (auto _ : state) {
    // A small wiggle inside epsilon: the drift check skips the full pass.
    net.set_capacity(resources[i % 10], (i % 2) ? 1.02e9 : 1e9);
    ++i;
  }
  state.SetLabel(std::to_string(flows) + " flows, " +
                 std::to_string(net.approx_rerates_skipped()) + " skipped");
}
BENCHMARK(BM_FlowNetworkRerateApprox)->Arg(8)->Arg(32)->Arg(128);

void BM_PipeDreamPlanner(benchmark::State& state) {
  const auto model = models::resnet50();
  partition::EnvironmentView env;
  env.worker_speed.assign(10, tflops(4));
  env.worker_bandwidth.assign(10, gbps(25));
  for (auto _ : state) {
    partition::PipeDreamPlanner planner(model, env, 128);
    benchmark::DoNotOptimize(planner.plan(10));
  }
}
BENCHMARK(BM_PipeDreamPlanner);

void BM_NeighborhoodEnumeration(benchmark::State& state) {
  const auto model = models::resnet50();
  const auto p = partition::Partition::even_split(
      model.num_layers(), {0, 1, 2, 3, 4, 5, 6, 7, 8, 9});
  for (auto _ : state) {
    benchmark::DoNotOptimize(partition::two_worker_candidates(p));
  }
}
BENCHMARK(BM_NeighborhoodEnumeration);

void BM_MetaNetworkPredict(benchmark::State& state) {
  const core::FeatureEncoder encoder;
  core::MetaNetworkConfig mc;
  mc.dynamic_dim = encoder.dynamic_dim();
  mc.static_dim = encoder.static_dim();
  mc.partition_dim = encoder.partition_dim();
  core::MetaNetwork meta(mc, 1);
  const std::vector<std::vector<double>> seq(
      8, std::vector<double>(encoder.dynamic_dim(), 0.4));
  const std::vector<double> st(encoder.static_dim(), 0.4);
  const std::vector<double> pf(encoder.partition_dim(), 0.4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(meta.predict(seq, st, pf));
  }
}
BENCHMARK(BM_MetaNetworkPredict);

void BM_ProfilerSpanOverhead(benchmark::State& state) {
  // The cost of leaving PROF_SPAN in a hot path. Arg(0) measures the
  // disabled case — one relaxed load and a branch, the ≤2 ns budget quoted
  // in docs/TELEMETRY.md — and Arg(1) the full record path. The recording
  // buffer is drained periodically so the enabled case measures appends,
  // not allocation-driven regrowth of an unbounded vector.
  const bool enabled = state.range(0) != 0;
  prof::reset();
  prof::set_enabled(enabled);
  std::size_t recorded = 0;
  for (auto _ : state) {
    {
      PROF_SPAN("bench/span_overhead");
    }
    if (enabled && ++recorded >= 65536) {
      state.PauseTiming();
      prof::reset();
      recorded = 0;
      state.ResumeTiming();
    }
  }
  prof::set_enabled(false);
  prof::reset();
  state.SetLabel(enabled ? "enabled" : "disabled");
}
BENCHMARK(BM_ProfilerSpanOverhead)->Arg(0)->Arg(1);

void BM_ProfilerAggOverhead(benchmark::State& state) {
  // PROF_SPAN_AGG is the flavour meant for per-event paths (queue push/pop):
  // constant memory, so no periodic drain is needed even when enabled.
  const bool enabled = state.range(0) != 0;
  prof::reset();
  prof::set_enabled(enabled);
  for (auto _ : state) {
    PROF_SPAN_AGG("bench/agg_overhead");
  }
  prof::set_enabled(false);
  prof::reset();
  state.SetLabel(enabled ? "enabled" : "disabled");
}
BENCHMARK(BM_ProfilerAggOverhead)->Arg(0)->Arg(1);

void BM_ExecutorIteration(benchmark::State& state) {
  const auto model = models::alexnet();
  for (auto _ : state) {
    state.PauseTiming();
    sim::Simulator sim;
    sim::ClusterConfig cc;
    cc.nic_bandwidth = gbps(25);
    sim::Cluster cluster(sim, cc);
    const auto env = partition::EnvironmentView::from_cluster(
        cluster, comm::pytorch_profile(), comm::SyncScheme::kRing);
    partition::PipeDreamPlanner planner(model, env, 256);
    const auto plan = planner.plan(10);
    pipeline::PipelineExecutor executor(cluster, model, plan.partition,
                                        pipeline::ExecutorConfig{});
    state.ResumeTiming();
    benchmark::DoNotOptimize(executor.run(10, 2));
  }
}
BENCHMARK(BM_ExecutorIteration)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
