// Ablation: PipeDream's hierarchical-topology assumption. Its planner
// assumes every link at a level has the same bandwidth; on a two-tier
// cluster with oversubscribed rack uplinks that is false, and a plan that
// straddles racks at a fat boundary pays for it. We compare the same plan
// executed on a single-switch cluster vs a two-tier one, and show how much
// a placement that keeps hot boundaries inside racks recovers.
#include <iostream>

#include "bench_common.hpp"

using namespace autopipe;

namespace {

double run_on(const models::ModelSpec& model,
              const partition::Partition& partition, bool two_tier,
              double uplink_gbps) {
  sim::Simulator sim;
  sim::ClusterConfig config;
  config.nic_bandwidth = gbps(25);
  if (two_tier) {
    config.servers_per_rack = 2;  // racks of 2 servers (4 GPUs)
    config.rack_uplink_bandwidth = gbps(uplink_gbps);
  }
  sim::Cluster cluster(sim, config);
  pipeline::PipelineExecutor executor(cluster, model, partition,
                                      pipeline::ExecutorConfig{});
  return executor.run(80, 30).throughput;
}

}  // namespace

int main(int argc, char** argv) {
  bench::parse_common_flags(argc, argv);
  const auto model = models::vgg16();
  bench::Testbed planning = bench::make_testbed(25);
  const auto plan = bench::plan_pipedream(
      planning, model, comm::pytorch_profile(), comm::SyncScheme::kRing);

  TextTable table({"topology", "img/s", "vs single switch"});
  const double flat = run_on(model, plan.partition, false, 0);
  table.add_row({"single switch (paper's testbed)", TextTable::num(flat, 1),
                 "-"});
  for (double uplink : {25.0, 10.0, 5.0}) {
    const double tiered = run_on(model, plan.partition, true, uplink);
    table.add_row({"2 servers/rack, " + TextTable::num(uplink, 0) +
                       "G uplink",
                   TextTable::num(tiered, 1),
                   TextTable::num((tiered / flat - 1.0) * 100.0, 1) + "%"});
  }
  table.print(std::cout,
              "Ablation — hierarchical-topology assumption (VGG16, "
              "PipeDream plan from a flat 25 Gbps view)");
  std::cout << "\nPipeDream's planner assumes uniform per-level bandwidth "
               "(Observation 2); oversubscribed\nrack uplinks violate it and "
               "the one-shot plan cannot react — another fluctuation-class\n"
               "AutoPipe's profiling sees (observed bandwidth reflects the "
               "uplink share).\n";
  return 0;
}
