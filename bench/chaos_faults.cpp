// Chaos harness: randomized fault schedules against the full AutoPipe loop
// (executor + controller + watchdog), many seeds, four invariants per seed:
//
//   1. completion  — the run finishes; no deadlock, no stray contract error
//   2. conservation — every injected mini-batch is accounted for:
//                     injected == completed + dropped, nothing in flight
//   3. recovery    — once every fault has cleared, throughput returns to
//                     within --epsilon of the pre-fault level
//   4. determinism — the same seed replays to a byte-identical trace
//   5. ledger      — every planning round left exactly one decision record,
//                     every record reached a terminal outcome, the ledger
//                     replays byte-identically and round-trips through the
//                     reader
//
// The schedule shape is scaled from a fault-free probe run's measured
// iteration period, so the same harness stresses any model/cluster pair.
//
//   chaos_faults [--seeds=N] [--iterations=N] [--epsilon=X] [--seed0=N]
#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/bubbles.hpp"
#include "analysis/ledger_reader.hpp"
#include "analysis/trace_view.hpp"
#include "bench_common.hpp"
#include "common/expect.hpp"
#include "faults/fault_plan.hpp"

using namespace autopipe;

namespace {

constexpr std::size_t kServers = 3;
constexpr std::size_t kGpusPerServer = 2;

struct ChaosOutcome {
  pipeline::PipelineExecutor::FaultStats stats;
  std::size_t active = 0;
  std::size_t wedges = 0;
  std::size_t emergency_replans = 0;
  std::size_t readmissions = 0;
  std::vector<double> end_times;
  std::string trace_text;
  std::string ledger_text;
  std::size_t ledger_size = 0;
  std::size_t decisions = 0;
  bool ledger_resolved = false;
  double fault_downtime = 0.0;
  double wall = 0.0;
  bool bubbles_exact = true;
};

/// One full simulated training run under `fault_plan` (empty plan = probe).
ChaosOutcome run_chaos(const faults::FaultPlan& fault_plan,
                       std::size_t iterations) {
  sim::Simulator simulator;
  simulator.tracer().set_enabled(true);
  simulator.ledger().set_enabled(true);
  sim::ClusterConfig config;
  config.num_servers = kServers;
  config.gpus_per_server = kGpusPerServer;
  sim::Cluster cluster(simulator, config);

  const auto model = models::alexnet();
  const auto env = partition::EnvironmentView::from_cluster(
      cluster, comm::pytorch_profile(), comm::SyncScheme::kRing);
  partition::PipeDreamPlanner planner(
      model, env, model.default_batch_size(),
      partition::PipeDreamPlanner::Mode::kCurrentEnvironment);
  const auto plan = planner.plan(cluster.num_workers());

  pipeline::ExecutorConfig executor_config;
  executor_config.framework = comm::pytorch_profile();
  executor_config.sync_scheme = comm::SyncScheme::kRing;
  pipeline::PipelineExecutor executor(cluster, model, plan.partition,
                                      executor_config);

  core::ControllerConfig cc;
  cc.arbiter_mode = core::ControllerConfig::ArbiterMode::kThreshold;
  cc.use_meta_network = false;
  core::AutoPipeController controller(cluster, executor, cc, nullptr,
                                      nullptr);
  controller.attach();
  fault_plan.install(simulator, cluster);

  const auto report = executor.run(iterations, /*warmup=*/5);

  ChaosOutcome out;
  out.stats = executor.fault_stats();
  out.active = executor.active_batches();
  out.wedges = controller.stats().wedges_detected;
  out.emergency_replans = controller.stats().emergency_replans;
  out.readmissions = controller.stats().readmissions;
  out.end_times = report.iteration_end_times;
  std::ostringstream os;
  simulator.tracer().write_text(os);
  out.trace_text = os.str();
  simulator.ledger().finalize("run_end");
  out.ledger_resolved = simulator.ledger().all_resolved();
  out.ledger_size = simulator.ledger().size();
  out.decisions = controller.stats().decisions;
  std::ostringstream ls;
  simulator.ledger().write_text(ls);
  out.ledger_text = ls.str();

  // Bubble attribution must still partition every worker's wall clock
  // exactly with the fault-downtime class in the mix.
  const analysis::TraceView view(simulator.tracer().events());
  const analysis::BubbleReport bubbles = analysis::attribute_bubbles(view);
  out.wall = bubbles.wall_clock;
  out.fault_downtime = bubbles.totals[static_cast<std::size_t>(
      analysis::BubbleClass::kFaultDowntime)];
  for (const analysis::WorkerBubbles& wb : bubbles.workers) {
    if (std::abs(wb.busy_seconds + wb.idle_seconds() - bubbles.wall_clock) >
        1e-6 * std::max(1.0, bubbles.wall_clock)) {
      out.bubbles_exact = false;
    }
  }
  return out;
}

/// Mean seconds/iteration over iterations [lo, hi), measured on elapsed
/// simulated time — deep pipelines complete iterations in bursts, so
/// per-iteration deltas are full of zeros and a median misleads.
double mean_period(const std::vector<double>& end_times, std::size_t lo,
                   std::size_t hi) {
  if (lo < 1) lo = 1;
  if (hi > end_times.size()) hi = end_times.size();
  if (hi <= lo) return 0.0;
  const double span = end_times[hi - 1] - end_times[lo - 1];
  return span > 0.0 ? span / static_cast<double>(hi - lo) : 0.0;
}

std::size_t flag(int argc, char** argv, const std::string& name,
                 std::size_t fallback) {
  const std::string prefix = "--" + name + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind(prefix, 0) == 0)
      return static_cast<std::size_t>(
          std::strtoull(a.c_str() + prefix.size(), nullptr, 10));
  }
  return fallback;
}

double flag_double(int argc, char** argv, const std::string& name,
                   double fallback) {
  const std::string prefix = "--" + name + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind(prefix, 0) == 0)
      return std::strtod(a.c_str() + prefix.size(), nullptr);
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  bench::parse_common_flags(argc, argv);
  const std::size_t seeds = flag(argc, argv, "seeds", 50);
  const std::size_t seed0 = flag(argc, argv, "seed0", 1);
  const std::size_t iterations = flag(argc, argv, "iterations", 100);
  const double epsilon = flag_double(argc, argv, "epsilon", 0.35);

  // Fault-free probe: the measured iteration period anchors the schedule
  // shape so outages are a few iterations long, not a fixed wall-clock
  // guess that a slow model would never reach.
  const ChaosOutcome probe = run_chaos(faults::FaultPlan{}, 30);
  const double period = mean_period(probe.end_times, 3, 30);
  AUTOPIPE_EXPECT_MSG(period > 0.0, "probe run produced no usable periods");
  // Anchor the window on the probe's actual timeline: pipeline fill and
  // bursty completions (an in-flight window finishes at one timestamp) make
  // "N periods in" a poor guess for when iteration N lands. Faults begin
  // just after the probe's horizon so the chaos run has a ~27-iteration
  // healthy prefix to measure the pre-fault period on.
  const double fault_start = probe.end_times.back() + 2 * period;
  const double fault_clear = fault_start + 30 * period;
  std::cout << "probe: mean iteration period "
            << TextTable::num(period * 1e3, 2) << " ms; fault window ["
            << TextTable::num(fault_start, 2) << "s, "
            << TextTable::num(fault_clear, 2) << "s]\n\n";

  TextTable table({"seed", "events", "injected", "dropped", "wedges",
                   "emerg", "readmit", "downtime(s)", "pre(ms)", "post(ms)",
                   "verdict"});
  // Seeds are independent full-loop runs, so they fan out across the
  // --jobs pool; each body fills only its own row slot and the table is
  // assembled in seed order afterwards, keeping output identical at any
  // thread count.
  struct SeedRow {
    bool ok = false;
    std::vector<std::string> cells;
  };
  std::vector<SeedRow> rows(seeds);
  bench::for_each_scenario(seeds, [&](std::size_t s) {
    const std::size_t seed = seed0 + s;
    rows[s].ok = bench::run_scenario("seed " + std::to_string(seed), [&] {
      faults::ChaosSpec spec;
      spec.seed = seed;
      spec.start = fault_start;
      spec.clear_by = fault_clear;
      spec.min_outage = 2 * period;
      spec.max_outage = 8 * period;
      spec.flap_outage = 0.5 * period;
      const faults::FaultPlan fault_plan =
          faults::random_plan(spec, kServers, kGpusPerServer);

      const ChaosOutcome a = run_chaos(fault_plan, iterations);
      const ChaosOutcome b = run_chaos(fault_plan, iterations);

      // 2. conservation — run() returns the moment the target iteration
      // completes, so up to an in-flight window of batches legitimately
      // remains active; none may be unaccounted for.
      AUTOPIPE_EXPECT_MSG(
          a.stats.injected ==
              a.stats.completed + a.stats.dropped + a.active,
          "mini-batch conservation: injected " << a.stats.injected
              << " != completed " << a.stats.completed << " + dropped "
              << a.stats.dropped << " + in-flight " << a.active);
      AUTOPIPE_EXPECT_MSG(a.active <= 32,
                          a.active << " batches in flight at the end — "
                                      "more than any in-flight window");

      // 3. recovery: post-clear throughput within epsilon of pre-fault
      const auto& times = a.end_times;
      std::size_t pre_hi = 0;
      while (pre_hi < times.size() && times[pre_hi] < spec.start) ++pre_hi;
      std::size_t post_lo = pre_hi;
      while (post_lo < times.size() && times[post_lo] < spec.clear_by)
        ++post_lo;
      const double pre = mean_period(times, 3, pre_hi);
      const double post = mean_period(times, post_lo + 1, times.size());
      AUTOPIPE_EXPECT_MSG(pre > 0.0 && post > 0.0,
                          "not enough iterations around the fault window "
                          "(pre_hi=" << pre_hi << ", post_lo=" << post_lo
                              << ", total=" << times.size() << ")");
      AUTOPIPE_EXPECT_MSG(
          post <= pre / (1.0 - epsilon),
          "throughput did not recover: pre period " << pre << "s, post "
              << post << "s (epsilon " << epsilon << ")");

      // 4. determinism
      AUTOPIPE_EXPECT_MSG(a.trace_text == b.trace_text,
                          "same seed replayed to a different trace ("
                              << a.trace_text.size() << " vs "
                              << b.trace_text.size() << " bytes)");

      // Fault downtime must appear in (and not break) bubble attribution.
      AUTOPIPE_EXPECT_MSG(a.bubbles_exact,
                          "bubble classes no longer partition wall clock");

      // 5. ledger: one record per planning round, no dangling outcomes,
      // deterministic replay, and a lossless reader round-trip.
      AUTOPIPE_EXPECT_MSG(
          a.ledger_size == a.decisions,
          "ledger recorded " << a.ledger_size << " decisions but the "
              "controller made " << a.decisions);
      AUTOPIPE_EXPECT_MSG(a.ledger_resolved,
                          "ledger left dangling (pending) decision records "
                          "after finalize");
      AUTOPIPE_EXPECT_MSG(a.ledger_text == b.ledger_text,
                          "same seed replayed to a different ledger ("
                              << a.ledger_text.size() << " vs "
                              << b.ledger_text.size() << " bytes)");
      {
        std::istringstream in(a.ledger_text);
        const trace::DecisionLedger parsed = analysis::read_ledger(in);
        std::ostringstream re;
        parsed.write_text(re);
        AUTOPIPE_EXPECT_MSG(re.str() == a.ledger_text,
                            "ledger does not round-trip through the reader");
      }

      rows[s].cells = {std::to_string(seed),
                       std::to_string(fault_plan.size()),
                       std::to_string(a.stats.injected),
                       std::to_string(a.stats.dropped),
                       std::to_string(a.wedges),
                       std::to_string(a.emergency_replans),
                       std::to_string(a.readmissions),
                       TextTable::num(a.fault_downtime, 2),
                       TextTable::num(pre * 1e3, 2),
                       TextTable::num(post * 1e3, 2),
                       "ok"};
    });
  });
  std::size_t passed = 0;
  for (std::size_t s = 0; s < seeds; ++s) {
    if (rows[s].ok) {
      ++passed;
      table.add_row(rows[s].cells);
    } else {
      table.add_row({std::to_string(seed0 + s), "-", "-", "-", "-", "-", "-",
                     "-", "-", "-", "FAIL"});
    }
  }
  table.print(std::cout, "chaos harness — randomized fault schedules");
  std::cout << "\n" << passed << "/" << seeds << " seeds passed\n";
  return bench::exit_status();
}
