// Fig 4: impact of dynamically changing computation resources on PipeDream.
// An extra training job lands on every GPU mid-experiment (the paper adds a
// ResNet50 job per device). "Actual" keeps the original partition planned
// for exclusive GPUs; "Optimal" re-plans for the contended speeds.
#include <algorithm>
#include <iostream>

#include "bench_common.hpp"

using namespace autopipe;
using bench::RunOptions;

namespace {

struct Pair {
  double actual = 0.0;
  double optimal = 0.0;
};

Pair measure(const models::ModelSpec& model, double bandwidth_gbps) {
  Pair out;
  {
    bench::Testbed t = bench::make_testbed(bandwidth_gbps);
    const auto plan = bench::plan_pipedream(t, model, comm::pytorch_profile(),
                                            comm::SyncScheme::kRing);
    for (sim::WorkerId w = 0; w < t.cluster->num_workers(); ++w)
      t.cluster->add_background_job(w);
    out.actual = bench::run_pipeline(t, model, plan.partition, RunOptions{})
                     .throughput;
  }
  {
    bench::Testbed t = bench::make_testbed(bandwidth_gbps);
    for (sim::WorkerId w = 0; w < t.cluster->num_workers(); ++w)
      t.cluster->add_background_job(w);
    const auto plan = bench::plan_refined(t, model, comm::pytorch_profile(),
                                          comm::SyncScheme::kRing);
    out.optimal = bench::run_pipeline(t, model, plan.partition, RunOptions{})
                      .throughput;
  }
  // The "optimal" configuration is whichever of the two plans executes
  // better in the changed environment — an oracle never adopts a worse one.
  out.optimal = std::max(out.optimal, out.actual);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::parse_common_flags(argc, argv);
  {
    TextTable table({"model", "actual (img/s)", "optimal (img/s)",
                     "degradation"});
    for (const auto& model : models::image_models()) {
      const Pair p = measure(model, 25);
      table.add_row({model.name(), TextTable::num(p.actual, 1),
                     TextTable::num(p.optimal, 1),
                     TextTable::num(bench::speedup_pct(p.optimal, p.actual), 1) +
                         "%"});
    }
    table.print(std::cout,
                "Fig 4a — one extra job per GPU, model axis (25 Gbps)");
  }
  std::cout << '\n';
  {
    TextTable table({"network", "actual (img/s)", "optimal (img/s)",
                     "degradation"});
    const auto model = models::resnet50();
    for (double bw : bench::kBandwidthGridGbps) {
      const Pair p = measure(model, bw);
      table.add_row({TextTable::num(bw, 0) + "Gbps",
                     TextTable::num(p.actual, 1),
                     TextTable::num(p.optimal, 1),
                     TextTable::num(bench::speedup_pct(p.optimal, p.actual), 1) +
                         "%"});
    }
    table.print(std::cout,
                "Fig 4b — one extra job per GPU, network axis (ResNet50)");
  }
  std::cout << "\nPaper's shape: GPU contention hurts across all models; the "
               "gap to optimal grows with\nnetwork speed (39% at 10 Gbps -> "
               "45% at 100 Gbps in the paper) because computation\nis a "
               "larger share of the iteration on fast networks.\n";
  return 0;
}
