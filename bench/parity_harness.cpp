// Differential parity harness CLI: drives the same randomized scenario
// (alexnet on 3x2, chaos fault plan + background churn, seeded) through the
// binary-heap reference queue and the timing-wheel queue and demands
// byte-identical traces, ledgers, metrics and iteration timelines. This is
// the CI face of tests/parity_test.cpp — fewer fixed seeds there, an
// arbitrary seed window here, plus divergence artifacts for debugging.
//
//   parity_harness [--seeds=N] [--seed0=N] [--jobs=N] [--artifacts=DIR]
//
// With --artifacts, a diverging seed writes the heap and wheel trace /
// ledger / metrics captures plus the first-divergence report into DIR so a
// CI job can upload them.
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "parity/differential.hpp"

using namespace autopipe;

namespace {

std::size_t flag(int argc, char** argv, const std::string& name,
                 std::size_t fallback) {
  const std::string prefix = "--" + name + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind(prefix, 0) == 0)
      return static_cast<std::size_t>(
          std::strtoull(a.c_str() + prefix.size(), nullptr, 10));
  }
  return fallback;
}

std::string flag_string(int argc, char** argv, const std::string& name) {
  const std::string prefix = "--" + name + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind(prefix, 0) == 0) return a.substr(prefix.size());
  }
  return {};
}

void write_file(const std::filesystem::path& path, const std::string& text) {
  std::ofstream out(path);
  out << text;
}

/// Dump both captures plus the divergence report for one failing seed.
void write_artifacts(const std::filesystem::path& dir, std::uint64_t seed,
                     const parity::ScenarioResult& heap,
                     const parity::ScenarioResult& wheel,
                     const std::string& report) {
  std::filesystem::create_directories(dir);
  const std::string stem = "seed" + std::to_string(seed);
  write_file(dir / (stem + ".report.txt"), report);
  write_file(dir / (stem + ".heap.trace"), heap.trace_text);
  write_file(dir / (stem + ".wheel.trace"), wheel.trace_text);
  write_file(dir / (stem + ".heap.ledger"), heap.ledger_text);
  write_file(dir / (stem + ".wheel.ledger"), wheel.ledger_text);
  write_file(dir / (stem + ".heap.metrics"), heap.metrics_text);
  write_file(dir / (stem + ".wheel.metrics"), wheel.metrics_text);
}

struct SeedRow {
  bool identical = false;
  std::string report;
  parity::ScenarioResult heap;
  parity::ScenarioResult wheel;
};

}  // namespace

int main(int argc, char** argv) {
  bench::parse_common_flags(argc, argv);
  const std::size_t seeds = flag(argc, argv, "seeds", 12);
  const std::size_t seed0 = flag(argc, argv, "seed0", 1);
  const std::string artifacts = flag_string(argc, argv, "artifacts");

  std::cout << "parity: heap (reference) vs wheel (candidate), " << seeds
            << " seeds from " << seed0 << "\n\n";

  // Seeds are independent, so they fan out across the --jobs pool; each
  // body fills only its own row and the table renders in seed order, so
  // output is identical at any thread count.
  std::vector<SeedRow> rows(seeds);
  bench::for_each_scenario(seeds, [&](std::size_t s) {
    parity::ScenarioConfig config;
    config.seed = seed0 + s;
    rows[s].heap = parity::run_scenario(config, sim::EventQueueKind::kHeap);
    rows[s].wheel = parity::run_scenario(config, sim::EventQueueKind::kWheel);
    const parity::Divergence d = parity::compare(rows[s].heap, rows[s].wheel);
    rows[s].identical = d.identical;
    rows[s].report = d.report;
  });

  TextTable table({"seed", "events", "scheduled", "trace(B)", "verdict"});
  std::size_t failures = 0;
  for (std::size_t s = 0; s < seeds; ++s) {
    const SeedRow& row = rows[s];
    const std::uint64_t seed = seed0 + s;
    table.add_row({std::to_string(seed),
                   std::to_string(row.heap.events_processed),
                   std::to_string(row.heap.scheduled_events),
                   std::to_string(row.heap.trace_text.size()),
                   row.identical ? "identical" : "DIVERGED"});
    if (row.identical) continue;
    ++failures;
    std::cerr << "seed " << seed << " diverged:\n" << row.report;
    if (!artifacts.empty())
      write_artifacts(artifacts, seed, row.heap, row.wheel, row.report);
  }
  table.print(std::cout);

  if (failures != 0) {
    std::cerr << "\n" << failures << "/" << seeds << " seeds diverged";
    if (!artifacts.empty()) std::cerr << "; artifacts in " << artifacts;
    std::cerr << "\n";
    return 1;
  }
  std::cout << "\nall " << seeds << " seeds byte-identical across queues\n";
  return 0;
}
