// Fig 9: training under dynamic bandwidth. ResNet50, Ring/PyTorch. The
// link starts at 10 Gbps and steps to 25/40/100 Gbps at iterations
// 20/40/60. PipeDream keeps its iteration-0 partition; AutoPipe
// re-configures. We print both per-iteration speed series — the two lines
// of the paper's figure.
#include <iostream>

#include "bench_common.hpp"

using namespace autopipe;
using bench::RunOptions;

namespace {

bench::RunResult run_series(bool autopipe_on) {
  const auto model = models::vgg16();
  bench::Testbed t = bench::make_testbed(25);
  const auto plan = bench::plan_pipedream(t, model, comm::pytorch_profile(),
                                          comm::SyncScheme::kRing);
  // The paper steps bandwidth 10 -> 25 -> 40 -> 100 Gbps. In our substrate a
  // 10 Gbps-planned ResNet50 pipeline is already compute-bound at higher
  // speeds, so rising steps alone leave nothing to re-configure (see
  // EXPERIMENTS.md); we exercise the same adaptation with a fluctuating
  // schedule that includes the decrease direction.
  sim::ResourceTrace trace;
  trace.at_iteration(20, sim::ResourceTrace::set_all_nic_bandwidth(gbps(10)));
  trace.at_iteration(40, sim::ResourceTrace::set_all_nic_bandwidth(gbps(40)));
  trace.at_iteration(60, sim::ResourceTrace::set_all_nic_bandwidth(gbps(10)));

  RunOptions options;
  options.autopipe = autopipe_on;
  options.trace = &trace;
  options.iterations = 80;
  options.warmup = 5;
  options.scenario = autopipe_on ? "autopipe" : "pipedream";
  return bench::run_pipeline(t, model, plan.partition, options);
}

}  // namespace

int main(int argc, char** argv) {
  bench::parse_common_flags(argc, argv);
  bench::RunResult pipedream;
  bench::RunResult autopipe;
  if (!bench::run_scenario("pipedream", [&] { pipedream = run_series(false); }) ||
      !bench::run_scenario("autopipe", [&] { autopipe = run_series(true); })) {
    return bench::exit_status();
  }

  TextTable table({"iteration", "PipeDream (img/s)", "AutoPipe (img/s)"});
  for (std::size_t i = 4; i < pipedream.end_times.size(); i += 5) {
    table.add_row({std::to_string(i + 1),
                   TextTable::num(pipedream.window_mean(i - 4, i + 1), 1),
                   TextTable::num(autopipe.window_mean(i - 4, i + 1), 1)});
  }
  table.print(std::cout,
              "Fig 9 — VGG16 under dynamic bandwidth "
              "(25G -> 10G@20 -> 40G@40 -> 10G@60)");

  TextTable summary({"phase", "PipeDream", "AutoPipe", "speedup"});
  const std::pair<std::size_t, std::size_t> phases[] = {
      {5, 20}, {25, 40}, {45, 60}, {65, 80}};
  const char* labels[] = {"25Gbps", "10Gbps", "40Gbps", "10Gbps(2)"};
  for (int p = 0; p < 4; ++p) {
    const double pd = pipedream.window_mean(phases[p].first,
                                            phases[p].second);
    const double ap = autopipe.window_mean(phases[p].first,
                                           phases[p].second);
    summary.add_row({labels[p], TextTable::num(pd, 1), TextTable::num(ap, 1),
                     TextTable::num(bench::speedup_pct(ap, pd), 0) + "%"});
  }
  std::cout << '\n';
  summary.print(std::cout, "Fig 9 — per-phase means");
  std::cout << "\nPaper's shape: AutoPipe leads throughout and the gap widens "
               "as bandwidth grows.\n";
  return bench::exit_status();
}
