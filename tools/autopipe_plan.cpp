// autopipe_plan — planner inspection. Prints the Table-1 profile, the
// PipeDream plan, the current-environment re-plan and the rebalanced
// variant for a model on a configurable cluster, with analytic speed
// estimates and memory-fit checks — without running a simulation.
//
//   autopipe_plan --model resnet50 --bandwidth 25
//   autopipe_plan --model vgg16 --bandwidth 10 --extra-jobs 2 --profile
#include <iostream>
#include <sstream>

#include "common/expect.hpp"
#include "common/flags.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "models/zoo.hpp"
#include "partition/analytic_eval.hpp"
#include "partition/pipedream_planner.hpp"
#include "partition/rebalance.hpp"
#include "pipeline/memory.hpp"
#include "sim/cluster.hpp"

using namespace autopipe;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  if (flags.has("help")) {
    std::cout <<
        "autopipe_plan — inspect work partitions without simulating\n\n"
        "  --model NAME        alexnet | vgg16 | resnet50 | resnet18 |"
        " bert48 | gpt2\n"
        "  --bandwidth GBPS    NIC line rate (default 25)\n"
        "  --servers N         (default 5)   --gpus-per-server N (default 2)\n"
        "  --extra-jobs N      tenants per GPU beyond this job (default 0)\n"
        "  --batch N           mini-batch size (default: model's)\n"
        "  --profile           also print the per-layer Table-1 profile\n";
    return 0;
  }

  const auto model = models::model_by_name(flags.get("model", "resnet50"));
  const auto batch = flags.get_int("batch", 0) > 0
                         ? static_cast<std::size_t>(flags.get_int("batch", 0))
                         : model.default_batch_size();

  sim::Simulator simulator;
  sim::ClusterConfig config;
  config.num_servers = static_cast<std::size_t>(flags.get_int("servers", 5));
  config.gpus_per_server =
      static_cast<std::size_t>(flags.get_int("gpus-per-server", 2));
  config.nic_bandwidth = gbps(flags.get_double("bandwidth", 25));
  sim::Cluster cluster(simulator, config);
  for (std::int64_t j = 0; j < flags.get_int("extra-jobs", 0); ++j)
    for (sim::WorkerId w = 0; w < cluster.num_workers(); ++w)
      cluster.add_background_job(w);

  if (flags.get_bool("profile", false)) {
    TextTable profile({"layer", "fwd GFLOP/batch", "act MB/batch",
                       "params MB"});
    for (std::size_t l = 0; l < model.num_layers(); ++l) {
      profile.add_row({model.layer(l).name,
                       TextTable::num(model.fwd_flops(l, batch) / 1e9, 2),
                       TextTable::num(model.activation_bytes(l, batch) / 1e6,
                                      2),
                       TextTable::num(model.param_bytes(l) / 1e6, 2)});
    }
    profile.print(std::cout, "Table-1 profile, batch " +
                                 std::to_string(batch));
    std::cout << '\n';
  }

  const auto env = partition::EnvironmentView::from_cluster(
      cluster, comm::pytorch_profile(), comm::SyncScheme::kRing);

  struct Candidate {
    std::string name;
    partition::PlanResult plan;
  };
  std::vector<Candidate> candidates;
  {
    partition::PipeDreamPlanner planner(
        model, env, batch, partition::PipeDreamPlanner::Mode::kPipeDream);
    candidates.push_back({"PipeDream (simplified model)",
                          planner.plan(cluster.num_workers())});
  }
  {
    partition::PipeDreamPlanner planner(
        model, env, batch,
        partition::PipeDreamPlanner::Mode::kCurrentEnvironment);
    candidates.push_back({"re-plan (current environment)",
                          planner.plan(cluster.num_workers())});
  }
  {
    auto rebalanced = partition::speed_proportional_rebalance(
        model, candidates.back().plan.partition, env, batch);
    partition::PlanResult plan{rebalanced,
                               partition::optimal_in_flight(rebalanced), 0.0};
    candidates.push_back({"rebalanced (speed-proportional)", plan});
  }

  TextTable table({"planner", "partition", "in-flight",
                   "analytic img/s", "fits 16GB"});
  for (const auto& [name, plan] : candidates) {
    const double speed =
        partition::analytic_throughput(model, plan.partition, env, batch);
    const bool fits = pipeline::plan_fits_memory(
        cluster, model, plan.partition, batch,
        pipeline::ScheduleMode::kAsync1F1B, plan.in_flight);
    table.add_row({name, plan.partition.to_string(),
                   std::to_string(plan.in_flight), TextTable::num(speed, 1),
                   fits ? "yes" : "NO"});
  }
  table.print(std::cout, model.name() + " on " +
                             std::to_string(cluster.num_workers()) +
                             " workers");

  for (const std::string& flag : flags.unused())
    std::cerr << "warning: unknown flag --" << flag << " (see --help)\n";
  return 0;
}
