// autopipe_sweep — fan a declarative scenario grid across worker threads
// and report deterministically. The spec (inline or @file) expands to an
// ordered scenario list; each scenario runs on an isolated simulator, and
// results are merged in spec order, so the summary table and
// BENCH_sweep.json are byte-identical at any --jobs value. With
// --baseline, measured simulated throughput is gated against a committed
// BENCH_sweep.json within --tolerance.
//
// Examples:
//   autopipe_sweep --spec='model = alexnet; seed = 1..4' --jobs=4
//   autopipe_sweep --spec=@bench/sweeps/smoke.sweep --out=BENCH_sweep.json
//   autopipe_sweep --spec=@bench/sweeps/smoke.sweep --tolerance=0.10
//       --baseline=bench/baselines/sweep_smoke_baseline.json
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>

#include "analysis/profile_report.hpp"
#include "common/flags.hpp"
#include "common/profile.hpp"
#include "common/table.hpp"
#include "sweep/engine.hpp"
#include "sweep/report.hpp"
#include "sweep/runner.hpp"
#include "sweep/spec.hpp"

using namespace autopipe;

namespace {

void usage() {
  std::cout <<
      "autopipe_sweep — parallel scenario sweeps over the simulator\n\n"
      "  --spec SPEC|@FILE     sweep spec (required); `key = v1, v2` lines\n"
      "                        separated by newlines or ';'. Axes: model,\n"
      "                        system, servers, gpus-per-server, bandwidth,\n"
      "                        extra-jobs, churn, faults, seed (lo..hi\n"
      "                        ranges). Scalars: iterations, warmup,\n"
      "                        micro-batches, schedule. See\n"
      "                        docs/BENCHMARKS.md\n"
      "  --jobs N              worker threads (default 1; 0 = one per core)\n"
      "  --out PATH            write BENCH_sweep.json here\n"
      "  --timing              include the host-timing section in --out\n"
      "                        (non-deterministic; leave off for baselines)\n"
      "  --artifacts DIR       per-scenario trace/metrics/ledger files in\n"
      "                        DIR (must exist)\n"
      "  --timeseries [INTERVAL]\n"
      "                        with --artifacts, also write a per-scenario\n"
      "                        <label>.ts metric time-series sampled every\n"
      "                        INTERVAL sim-seconds (default 1;\n"
      "                        autopipe-ts-v1, byte-identical at any --jobs;\n"
      "                        see docs/TELEMETRY.md)\n"
      "  --profile PATH        record the host self-profiler across the\n"
      "                        sweep (planner/predictor/queue/sweep worker\n"
      "                        time) into PATH (autopipe-prof-v1; .json =\n"
      "                        Chrome trace) and add a per-category\n"
      "                        \"profile\" breakdown to the --timing section\n"
      "  --baseline PATH       gate against a committed BENCH_sweep.json\n"
      "  --tolerance FRAC      allowed throughput drop vs baseline\n"
      "                        (default 0.10)\n"
      "  --list                print the expanded scenario labels and exit\n";
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  if (flags.has("help")) {
    usage();
    return 0;
  }
  const std::string spec_arg = flags.get("spec", "");
  if (spec_arg.empty()) {
    std::cerr << "autopipe_sweep: --spec is required (see --help)\n";
    return 2;
  }

  sweep::SweepSpec spec;
  try {
    spec = sweep::load_sweep_spec(spec_arg);
  } catch (const std::exception& e) {
    std::cerr << "autopipe_sweep: " << e.what() << "\n";
    return 2;
  }
  const std::vector<sweep::ScenarioSpec> scenarios = spec.expand();

  if (flags.get_bool("list", false)) {
    for (const auto& s : scenarios) std::cout << s.label << "\n";
    std::cout << scenarios.size() << " scenario(s)\n";
    return 0;
  }

  const auto jobs = static_cast<std::size_t>(flags.get_int("jobs", 1));
  const std::string out_path = flags.get("out", "");
  const bool timing = flags.get_bool("timing", false);
  const std::string baseline_path = flags.get("baseline", "");
  const double tolerance = flags.get_double("tolerance", 0.10);
  sweep::ArtifactOptions artifacts;
  artifacts.directory = flags.get("artifacts", "");
  if (flags.has("timeseries")) {
    const std::string value = flags.get("timeseries", "");
    // Bare --timeseries parses as the boolean "true": take the default.
    artifacts.timeseries_interval =
        value == "true" ? 1.0 : std::strtod(value.c_str(), nullptr);
    if (!(artifacts.timeseries_interval > 0.0)) {
      std::cerr << "autopipe_sweep: --timeseries expects a positive "
                   "interval, got '" << value << "'\n";
      return 2;
    }
    if (artifacts.directory.empty()) {
      std::cerr << "autopipe_sweep: --timeseries needs --artifacts DIR\n";
      return 2;
    }
  }
  const std::string profile_path = flags.get("profile", "");
  for (const std::string& flag : flags.unused())
    std::cerr << "warning: unknown flag --" << flag << " (see --help)\n";

  if (!profile_path.empty()) {
    std::ofstream probe(profile_path);
    if (!probe.good()) {
      std::cerr << "autopipe_sweep: cannot open profile file: "
                << profile_path << "\n";
      return 2;
    }
    prof::reset();
    prof::set_enabled(true);
  }

  // Fail on an unwritable output now, not after the whole sweep.
  if (!out_path.empty()) {
    std::ofstream probe(out_path);
    if (!probe.good()) {
      std::cerr << "autopipe_sweep: cannot open output file: " << out_path
                << "\n";
      return 2;
    }
  }

  sweep::SweepResult result;
  result.jobs = sweep::resolve_jobs(jobs);
  result.scenarios.resize(scenarios.size());
  const auto start = std::chrono::steady_clock::now();
  sweep::run_indexed(scenarios.size(), jobs, [&](std::size_t i) {
    result.scenarios[i] = sweep::run_scenario(scenarios[i], artifacts);
  });
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  if (!profile_path.empty()) {
    // Worker threads joined inside run_indexed, so collect() is safe.
    prof::set_enabled(false);
    const std::vector<prof::ThreadProfile> profiles = prof::collect();
    const analysis::ProfileReport profile_report =
        analysis::build_profile_report(profiles);
    for (const analysis::ProfileEntry& e : profile_report.categories) {
      result.profile.push_back(
          {e.name, e.count, e.inclusive_ns, e.exclusive_ns});
    }
    std::ofstream out(profile_path);
    const bool json =
        profile_path.size() >= 5 &&
        profile_path.rfind(".json") == profile_path.size() - 5;
    if (json) {
      prof::write_chrome_json(profiles, out);
    } else {
      prof::write_text(profiles, out);
    }
    std::cout << "profile: " << profile_report.categories.size()
              << " categories across " << profiles.size()
              << " thread(s) -> " << profile_path << "\n";
  }

  sweep::write_summary_table(result, std::cout);
  std::cout << "wall: " << TextTable::num(result.wall_seconds, 2) << "s on "
            << result.jobs << " thread(s)\n";

  if (!out_path.empty()) {
    std::ofstream out(out_path);
    sweep::write_bench_json(result, out, timing);
    std::cout << "bench json: " << scenarios.size() << " scenarios -> "
              << out_path << "\n";
  }

  bool gate_ok = true;
  if (!baseline_path.empty()) {
    std::ifstream in(baseline_path);
    if (!in.good()) {
      std::cerr << "autopipe_sweep: cannot read baseline: " << baseline_path
                << "\n";
      return 2;
    }
    try {
      const auto baseline = sweep::read_baseline_throughput(in);
      const auto gate =
          sweep::gate_against_baseline(result, baseline, tolerance);
      sweep::write_gate_report(gate, tolerance, std::cout);
      gate_ok = gate.ok();
    } catch (const std::exception& e) {
      std::cerr << "autopipe_sweep: bad baseline: " << e.what() << "\n";
      return 2;
    }
  }

  bool all_ok = true;
  for (const auto& r : result.scenarios) all_ok = all_ok && r.ok;
  return (all_ok && gate_ok) ? 0 : 1;
}
