// autopipe_sim — the scenario driver. Runs any (model, bandwidth, sharing,
// schedule, system) combination from the command line and prints a
// one-block report, so new scenarios don't require writing C++.
//
// Examples:
//   autopipe_sim --model vgg16 --bandwidth 25 --system autopipe
//   autopipe_sim --model resnet50 --bandwidth 10 --extra-jobs 2 \
//                --system pipedream --iterations 200
//   autopipe_sim --model bert48 --schedule dapple --micro-batches 8 \
//                --system autopipe --bw-drop-iter 30 --bw-drop-gbps 10
//   autopipe_sim --model alexnet --system baseline --scheme ps
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <utility>

#include "analysis/json.hpp"
#include "analysis/report.hpp"
#include "common/profile.hpp"
#include "analysis/trace_view.hpp"
#include "autopipe/controller.hpp"
#include "baselines/data_parallel.hpp"
#include "cluster/job_manager.hpp"
#include "cluster/jobs_spec.hpp"
#include "common/expect.hpp"
#include "common/flags.hpp"
#include "common/log.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "faults/fault_plan.hpp"
#include "models/zoo.hpp"
#include "partition/pipedream_planner.hpp"
#include "pipeline/executor.hpp"
#include "sim/background.hpp"
#include "sim/cluster.hpp"
#include "sim/trace.hpp"

using namespace autopipe;

namespace {

void usage() {
  std::cout <<
      "autopipe_sim — shared-GPU-cluster pipeline-parallelism scenarios\n\n"
      "  --model NAME          alexnet | vgg16 | resnet50 | bert48 (default"
      " resnet50)\n"
      "  --system NAME         autopipe | pipedream | baseline | even"
      " (default autopipe)\n"
      "  --schedule NAME       1f1b | gpipe | dapple | chimera | 2bw"
      " (default 1f1b)\n"
      "  --scheme NAME         ring | ps (default ring)\n"
      "  --framework NAME      pytorch | tensorflow | mxnet (default"
      " pytorch)\n"
      "  --bandwidth GBPS      NIC line rate (default 25)\n"
      "  --servers N           physical servers (default 5)\n"
      "  --gpus-per-server N   (default 2)\n"
      "  --extra-jobs N        co-located identical jobs (default 0)\n"
      "  --iterations N        training iterations (default 100)\n"
      "  --warmup N            iterations excluded from the measurement"
      " (default 20)\n"
      "  --micro-batches N     for synchronous schedules (default 4)\n"
      "  --batch N             mini-batch size (default: model's)\n"
      "  --bw-drop-iter N      change bandwidth mid-run at iteration N\n"
      "  --bw-drop-gbps GBPS   the new bandwidth for --bw-drop-iter\n"
      "  --jobs-iter N         add a tenant on every GPU at iteration N\n"
      "  --churn               stochastic background workload\n"
      "  --faults SPEC         inject faults; SPEC is 'random:key=v,...'\n"
      "                        (keys: seed,start,clear,gpus,links,flaps,\n"
      "                        stragglers,profiler_drops,min_outage,\n"
      "                        max_outage), '@file' with one\n"
      "                        '<time> <kind> <index> [scale]' per line, or\n"
      "                        the same lines inline separated by ';'\n"
      "                        (see docs/FAULTS.md)\n"
      "  --seed N              RNG seed (default 1)\n"
      "  --jobs-spec SPEC|@FILE\n"
      "                        co-tenancy mode: run N independent AutoPipe\n"
      "                        jobs on the shared cluster under a\n"
      "                        cluster-level arbiter. SPEC is 'key = value'\n"
      "                        statements ('job' declares one job; arbiter,\n"
      "                        claim-window, preempt are fleet-level); see\n"
      "                        docs/COTENANCY.md. Replaces the single-job\n"
      "                        run; --model/--system/--schedule are ignored\n"
      "  --trace PATH          write an event trace of the run; .json gives\n"
      "                        Chrome trace_event format (chrome://tracing,\n"
      "                        Perfetto), .txt/.trace the plain-text format\n"
      "                        (see docs/TRACING.md; analyze either text\n"
      "                        trace with the autopipe_trace tool)\n"
      "  --metrics PATH        write the run's full metrics registry (flat\n"
      "                        counters/gauges plus rolling-series .ema/\n"
      "                        .mean/.count keys) as one JSON object with\n"
      "                        stable key order\n"
      "  --ledger PATH         write the controller's decision ledger (one\n"
      "                        record per planning round; see\n"
      "                        docs/DECISIONS.md, analyze with\n"
      "                        autopipe_trace decisions / calibration)\n"
      "  --timeseries PATH[:INTERVAL]\n"
      "                        sample the full metrics registry every\n"
      "                        INTERVAL sim-seconds (default 1) into the\n"
      "                        columnar autopipe-ts-v1 format; analyze with\n"
      "                        autopipe_trace timeseries (docs/TELEMETRY.md)\n"
      "  --profile PATH        record the host self-profiler (where the\n"
      "                        tool itself spends wall time: planner,\n"
      "                        predictor, event queue); .json gives Chrome\n"
      "                        trace_event format, anything else the\n"
      "                        autopipe-prof-v1 text format for\n"
      "                        autopipe_trace profile\n"
      "  --verbose             debug logging\n";
}

// Split "PATH[:INTERVAL]". The suffix after the last ':' is an interval
// only when it parses fully as a positive number, so paths that happen to
// contain colons keep working.
std::pair<std::string, double> split_timeseries_spec(const std::string& spec) {
  const std::string::size_type colon = spec.rfind(':');
  if (colon != std::string::npos && colon + 1 < spec.size()) {
    char* end = nullptr;
    const double v = std::strtod(spec.c_str() + colon + 1, &end);
    if (end != nullptr && *end == '\0' && v > 0.0)
      return {spec.substr(0, colon), v};
  }
  return {spec, 1.0};
}

/// Output files requested on the command line; empty path = not requested.
struct OutputPaths {
  std::string trace;
  std::string metrics;
  std::string ledger;
  std::string timeseries;
  std::string profile;
  double timeseries_interval = 1.0;
};

/// Serialize whatever outputs were requested. Shared by the single-job and
/// --jobs-spec fleet paths so both emit identical artifact formats.
void emit_outputs(sim::Simulator& simulator, const OutputPaths& paths) {
  if (!paths.trace.empty()) {
    std::ofstream out(paths.trace);
    AUTOPIPE_EXPECT_MSG(out.good(), "cannot open trace file " << paths.trace);
    const bool text =
        paths.trace.size() >= 4 &&
        (paths.trace.rfind(".txt") == paths.trace.size() - 4 ||
         (paths.trace.size() >= 6 &&
          paths.trace.rfind(".trace") == paths.trace.size() - 6));
    if (text) {
      simulator.tracer().write_text(out);
    } else {
      simulator.tracer().write_chrome_json(out);
    }
    std::cout << "trace: " << simulator.tracer().size() << " events -> "
              << paths.trace << "\n";
    // Breakdown straight off the in-memory recorder — the same report
    // `autopipe_trace bubbles` would print from the file.
    const analysis::TraceView view(simulator.tracer().events());
    std::cout << analysis::render_bubbles_text(analysis::analyze(view));
  }

  if (!paths.metrics.empty()) {
    std::ofstream out(paths.metrics);
    AUTOPIPE_EXPECT_MSG(out.good(),
                        "cannot open metrics file " << paths.metrics);
    const auto flattened = simulator.metrics().flattened();
    analysis::write_scalar_map_json(flattened, out);
    std::cout << "metrics: " << flattened.size() << " values -> "
              << paths.metrics << "\n";
  }

  if (!paths.ledger.empty()) {
    // Terminal-state any decision still mid-measurement, then serialize.
    simulator.ledger().finalize("run_end");
    std::ofstream out(paths.ledger);
    AUTOPIPE_EXPECT_MSG(out.good(),
                        "cannot open ledger file " << paths.ledger);
    simulator.ledger().write_text(out);
    std::cout << "ledger: " << simulator.ledger().size() << " decisions -> "
              << paths.ledger << "\n";
  }

  if (!paths.timeseries.empty()) {
    simulator.timeseries().finalize(simulator.now(), simulator.metrics());
    std::ofstream out(paths.timeseries);
    AUTOPIPE_EXPECT_MSG(out.good(),
                        "cannot open timeseries file " << paths.timeseries);
    simulator.timeseries().write_text(out);
    std::cout << "timeseries: " << simulator.timeseries().size()
              << " samples every "
              << TextTable::num(paths.timeseries_interval, 3) << "s -> "
              << paths.timeseries << "\n";
  }

  if (!paths.profile.empty()) {
    prof::set_enabled(false);
    const std::vector<prof::ThreadProfile> profiles = prof::collect();
    std::ofstream out(paths.profile);
    AUTOPIPE_EXPECT_MSG(out.good(),
                        "cannot open profile file " << paths.profile);
    const bool json =
        paths.profile.size() >= 5 &&
        paths.profile.rfind(".json") == paths.profile.size() - 5;
    if (json) {
      prof::write_chrome_json(profiles, out);
    } else {
      prof::write_text(profiles, out);
    }
    std::size_t spans = 0;
    for (const prof::ThreadProfile& tp : profiles)
      spans += tp.spans.size() + tp.aggregates.size();
    std::cout << "profile: " << spans << " span record(s) across "
              << profiles.size() << " thread(s) -> " << paths.profile << "\n";
  }
}

/// Co-tenancy mode: the whole fleet run, from parsed spec to summary
/// tables. Returns the process exit code.
int run_fleet(sim::Simulator& simulator, sim::Cluster& cluster,
              const cluster::FleetSpec& fleet, const OutputPaths& paths) {
  cluster::JobManager manager(simulator, cluster, fleet);
  const cluster::FleetReport fr = manager.run();

  emit_outputs(simulator, paths);

  TextTable jobs({"job", "model", "priority", "samples/s", "util", "commits",
                  "contention aborts", "finished at (s)"});
  for (const auto& j : fr.jobs) {
    jobs.add_row({std::to_string(j.id), j.model,
                  TextTable::num(j.priority, 2),
                  TextTable::num(j.report.throughput, 1),
                  TextTable::num(j.report.worker_utilization, 3),
                  std::to_string(j.commits),
                  std::to_string(j.contention_aborts),
                  TextTable::num(j.finished_at, 2)});
  }
  jobs.print(std::cout, "fleet: " + std::to_string(fr.jobs.size()) +
                            " job(s), " + fr.arbiter + " arbiter");

  TextTable summary({"metric", "value"});
  summary.add_row({"fleet throughput (samples/s)",
                   TextTable::num(fr.fleet_throughput, 1)});
  summary.add_row({"jain fairness", TextTable::num(fr.jain, 4)});
  summary.add_row({"claim rounds", std::to_string(fr.claim_rounds)});
  summary.add_row({"conflicts", std::to_string(fr.conflicts)});
  summary.add_row({"grants", std::to_string(fr.grants)});
  summary.add_row({"denials", std::to_string(fr.denials)});
  summary.add_row({"contention aborts",
                   std::to_string(fr.contention_aborts)});
  summary.print(std::cout, "autopipe_sim fleet report");
  return 0;
}

pipeline::ScheduleMode parse_schedule(const std::string& name) {
  if (name == "1f1b") return pipeline::ScheduleMode::kAsync1F1B;
  if (name == "gpipe") return pipeline::ScheduleMode::kGPipe;
  if (name == "dapple") return pipeline::ScheduleMode::kDapple;
  if (name == "chimera") return pipeline::ScheduleMode::kChimera;
  if (name == "2bw") return pipeline::ScheduleMode::kTwoBW;
  AUTOPIPE_EXPECT_MSG(false, "unknown schedule: " << name);
  throw contract_error("unreachable");
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  if (flags.has("help")) {
    usage();
    return 0;
  }
  if (flags.get_bool("verbose", false)) set_log_level(LogLevel::kDebug);

  const auto model = models::model_by_name(flags.get("model", "resnet50"));
  const std::string system = flags.get("system", "autopipe");
  const auto framework =
      comm::framework_by_name(flags.get("framework", "pytorch"));
  const auto scheme = flags.get("scheme", "ring") == "ps"
                          ? comm::SyncScheme::kParameterServer
                          : comm::SyncScheme::kRing;

  sim::Simulator simulator;
  const std::string trace_path = flags.get("trace", "");
  const std::string metrics_path = flags.get("metrics", "");
  const std::string ledger_path = flags.get("ledger", "");
  // Fail on an unwritable output path now, not after the whole run.
  const auto expect_writable = [](const std::string& path, const char* what) {
    std::ofstream probe(path);
    if (!probe.good()) {
      std::cerr << "autopipe_sim: cannot open " << what << " file: " << path
                << "\n";
      std::exit(2);
    }
  };
  if (!trace_path.empty()) {
    expect_writable(trace_path, "trace");
    simulator.tracer().set_enabled(true);
  }
  if (!metrics_path.empty()) expect_writable(metrics_path, "metrics");
  if (!ledger_path.empty()) {
    expect_writable(ledger_path, "ledger");
    simulator.ledger().set_enabled(true);
  }
  std::string timeseries_path;
  double timeseries_interval = 1.0;
  if (flags.has("timeseries")) {
    std::tie(timeseries_path, timeseries_interval) =
        split_timeseries_spec(flags.get("timeseries", ""));
    expect_writable(timeseries_path, "timeseries");
    simulator.timeseries().configure(timeseries_interval);
  }
  const std::string profile_path = flags.get("profile", "");
  if (!profile_path.empty()) {
    expect_writable(profile_path, "profile");
    prof::reset();
    prof::set_enabled(true);
  }
  const OutputPaths outputs{trace_path,      metrics_path, ledger_path,
                            timeseries_path, profile_path, timeseries_interval};
  sim::ClusterConfig cluster_config;
  cluster_config.num_servers =
      static_cast<std::size_t>(flags.get_int("servers", 5));
  cluster_config.gpus_per_server =
      static_cast<std::size_t>(flags.get_int("gpus-per-server", 2));
  cluster_config.nic_bandwidth = gbps(flags.get_double("bandwidth", 25));
  sim::Cluster cluster(simulator, cluster_config);

  const auto extra_jobs = flags.get_int("extra-jobs", 0);
  for (std::int64_t j = 0; j < extra_jobs; ++j) {
    for (sim::WorkerId w = 0; w < cluster.num_workers(); ++w)
      cluster.add_background_job(w);
  }
  if (flags.get_bool("churn", false)) {
    sim::BackgroundWorkloadConfig churn;
    churn.horizon = 600.0;
    static sim::BackgroundWorkload background(
        churn, Rng(static_cast<std::uint64_t>(flags.get_int("seed", 1))));
    background.install(simulator, cluster);
  }

  // Co-tenancy mode: --jobs-spec replaces the single-job pipeline below
  // with a JobManager fleet. Shares the cluster/churn/fault environment and
  // all --trace/--metrics/--ledger/--timeseries/--profile outputs.
  const std::string jobs_spec_arg = flags.get("jobs-spec", "");
  if (!jobs_spec_arg.empty()) {
    cluster::FleetSpec fleet;
    try {
      fleet = cluster::load_jobs_spec(jobs_spec_arg);
      cluster::assign_default_workers(fleet, cluster.num_workers());
    } catch (const std::exception& e) {
      std::cerr << "autopipe_sim: bad --jobs-spec: " << e.what() << "\n";
      return 2;
    }
    faults::FaultPlan fleet_faults;
    const std::string fleet_fault_spec = flags.get("faults", "");
    if (!fleet_fault_spec.empty()) {
      try {
        fleet_faults = faults::parse_spec(fleet_fault_spec,
                                          cluster_config.num_servers,
                                          cluster_config.gpus_per_server);
      } catch (const std::exception& e) {
        std::cerr << "autopipe_sim: bad --faults spec: " << e.what() << "\n";
        return 2;
      }
      fleet_faults.install(simulator, cluster,
                           [](const faults::FaultEvent& ev) {
                             LOG_DEBUG("fault: " << ev.describe());
                           });
      std::cout << "faults: " << fleet_faults.size()
                << " scheduled events (horizon "
                << TextTable::num(fleet_faults.horizon(), 2) << "s)\n";
    }
    for (const std::string& flag : flags.unused())
      std::cerr << "warning: unknown flag --" << flag << " (see --help)\n";
    return run_fleet(simulator, cluster, fleet, outputs);
  }

  const auto iterations =
      static_cast<std::size_t>(flags.get_int("iterations", 100));
  const auto warmup = static_cast<std::size_t>(flags.get_int("warmup", 20));

  // Baseline short-circuits: plain data parallelism.
  if (system == "baseline") {
    baselines::DataParallelConfig dp;
    dp.framework = framework;
    dp.sync_scheme = scheme;
    dp.batch_size = static_cast<std::size_t>(flags.get_int("batch", 0));
    std::vector<sim::WorkerId> all(cluster.num_workers());
    for (sim::WorkerId w = 0; w < all.size(); ++w) all[w] = w;
    const auto report = baselines::run_data_parallel(
        cluster, model, all, iterations, warmup, dp);
    std::cout << "data-parallel baseline: "
              << TextTable::num(report.throughput, 1) << " samples/s over "
              << iterations << " iterations\n";
    return 0;
  }

  // Plan.
  const auto env = partition::EnvironmentView::from_cluster(
      cluster, framework, scheme);
  partition::PipeDreamPlanner planner(model, env,
                                      model.default_batch_size());
  const auto plan = planner.plan(cluster.num_workers());
  const auto partition =
      system == "even" ? partition::Partition::even_split(
                             model.num_layers(),
                             [&] {
                               std::vector<sim::WorkerId> all(
                                   cluster.num_workers());
                               for (sim::WorkerId w = 0; w < all.size(); ++w)
                                 all[w] = w;
                               return all;
                             }())
                       : plan.partition;

  pipeline::ExecutorConfig executor_config;
  executor_config.framework = framework;
  executor_config.sync_scheme = scheme;
  executor_config.mode = parse_schedule(flags.get("schedule", "1f1b"));
  executor_config.micro_batches =
      static_cast<std::size_t>(flags.get_int("micro-batches", 4));
  executor_config.batch_size =
      static_cast<std::size_t>(flags.get_int("batch", 0));
  pipeline::PipelineExecutor executor(cluster, model, partition,
                                      executor_config);

  std::unique_ptr<core::AutoPipeController> controller;
  if (system == "autopipe") {
    core::ControllerConfig cc;
    cc.arbiter_mode = core::ControllerConfig::ArbiterMode::kThreshold;
    cc.use_meta_network = false;
    controller = std::make_unique<core::AutoPipeController>(
        cluster, executor, cc, nullptr, nullptr);
    controller->attach();
  }

  sim::ResourceTrace trace;
  if (flags.has("bw-drop-iter")) {
    trace.at_iteration(
        static_cast<std::size_t>(flags.get_int("bw-drop-iter", 0)),
        sim::ResourceTrace::set_all_nic_bandwidth(
            gbps(flags.get_double("bw-drop-gbps", 10))));
  }
  if (flags.has("jobs-iter")) {
    trace.at_iteration(
        static_cast<std::size_t>(flags.get_int("jobs-iter", 0)),
        sim::ResourceTrace::add_job_all_gpus());
  }
  executor.set_iteration_callback([&](std::size_t iters) {
    trace.apply_iteration(iters, cluster);
    if (controller) controller->on_iteration(iters);
  });

  faults::FaultPlan fault_plan;
  const std::string faults_spec = flags.get("faults", "");
  if (!faults_spec.empty()) {
    try {
      fault_plan = faults::parse_spec(faults_spec, cluster_config.num_servers,
                                      cluster_config.gpus_per_server);
    } catch (const std::exception& e) {
      std::cerr << "autopipe_sim: bad --faults spec: " << e.what() << "\n";
      return 2;
    }
    fault_plan.install(simulator, cluster,
                       [](const faults::FaultEvent& ev) {
                         LOG_DEBUG("fault: " << ev.describe());
                       });
    std::cout << "faults: " << fault_plan.size()
              << " scheduled events (horizon "
              << TextTable::num(fault_plan.horizon(), 2) << "s)\n";
  }

  for (const std::string& flag : flags.unused()) {
    std::cerr << "warning: unknown flag --" << flag << " (see --help)\n";
  }

  const auto report = executor.run(iterations, warmup);

  emit_outputs(simulator, outputs);

  TextTable summary({"metric", "value"});
  summary.add_row({"model", model.name()});
  summary.add_row({"system", system});
  summary.add_row({"initial partition", plan.partition.to_string()});
  summary.add_row({"final partition",
                   executor.current_partition().to_string()});
  summary.add_row({"throughput (samples/s)",
                   TextTable::num(report.throughput, 1)});
  Histogram iter_times;
  for (std::size_t i = warmup + 1; i < report.iteration_end_times.size();
       ++i) {
    iter_times.add(report.iteration_end_times[i] -
                   report.iteration_end_times[i - 1]);
  }
  if (!iter_times.empty()) {
    const Histogram::Summary s = iter_times.summary();
    summary.add_row({"iteration time p50 (ms)", TextTable::num(s.p50 * 1e3, 3)});
    summary.add_row({"iteration time p95 (ms)", TextTable::num(s.p95 * 1e3, 3)});
    summary.add_row({"iteration time p99 (ms)", TextTable::num(s.p99 * 1e3, 3)});
  }
  summary.add_row({"worker utilization",
                   TextTable::num(report.worker_utilization, 3)});
  summary.add_row({"partition switches",
                   std::to_string(executor.switches_performed())});
  summary.add_row({"bytes on wire (GB)",
                   TextTable::num(report.bytes_on_wire / 1e9, 2)});
  if (controller) {
    summary.add_row({"decisions",
                     std::to_string(controller->stats().decisions)});
    summary.add_row({"changes detected",
                     std::to_string(controller->stats().changes_detected)});
    summary.add_row(
        {"decision host time (ms)",
         TextTable::num(
             controller->stats().total_decision_wall_seconds * 1e3, 2)});
  }
  for (const auto& [name, value] : simulator.metrics().all())
    summary.add_row({name, TextTable::num(value, 3)});
  summary.print(std::cout, "autopipe_sim report");
  return 0;
}
