#!/usr/bin/env bash
# Append BENCH_*.json reports to the perf trajectory under bench/history/.
#
# Each report becomes one JSON line in bench/history/<stem>.jsonl (stem =
# basename without the BENCH_ prefix and .json suffix), stamped with the
# UTC time and the current commit so perf trends stay queryable across
# PRs:
#
#   tools/bench_history.sh BENCH_sweep.json [BENCH_decisions.json ...]
#
# Re-appending the same report at the same commit is a no-op (check.sh
# re-runs must not grow the files), and a missing python3 degrades to a
# skip with a warning instead of failing the calling check — the history
# is an accumulation step, never a gate. See docs/BENCHMARKS.md.
set -euo pipefail

repo="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
history_dir="${AUTOPIPE_BENCH_HISTORY_DIR:-$repo/bench/history}"

if [[ $# -lt 1 ]]; then
  echo "usage: tools/bench_history.sh BENCH_report.json ..." >&2
  exit 2
fi

if ! command -v python3 > /dev/null 2>&1; then
  echo "bench_history: python3 not found; skipping history append" >&2
  exit 0
fi

commit="$(git -C "$repo" rev-parse --short HEAD 2>/dev/null || echo unknown)"
mkdir -p "$history_dir"

for report in "$@"; do
  if [[ ! -f "$report" ]]; then
    echo "bench_history: no such report '$report'; skipping" >&2
    continue
  fi
  HIST_DIR="$history_dir" COMMIT="$commit" python3 - "$report" <<'PY'
import json, os, sys, datetime

report = sys.argv[1]
stem = os.path.basename(report)
if stem.startswith("BENCH_"):
    stem = stem[len("BENCH_"):]
if stem.endswith(".json"):
    stem = stem[: -len(".json")]
out = os.path.join(os.environ["HIST_DIR"], stem + ".jsonl")

try:
    with open(report) as f:
        data = json.load(f)
except (OSError, ValueError) as e:
    print(f"bench_history: cannot parse '{report}': {e}", file=sys.stderr)
    sys.exit(0)  # accumulation step, never a gate

commit = os.environ["COMMIT"]
entry = {
    "schema": "autopipe-bench-history-v1",
    "commit": commit,
    "utc": datetime.datetime.now(datetime.timezone.utc)
        .strftime("%Y-%m-%dT%H:%M:%SZ"),
    "report": os.path.basename(report),
    "data": data,
}

# Same report at the same commit: replace nothing, append nothing.
try:
    with open(out) as f:
        lines = f.readlines()
    if lines:
        last = json.loads(lines[-1])
        if last.get("commit") == commit and last.get("data") == data:
            print(f"bench_history: {stem} already recorded at {commit}")
            sys.exit(0)
except FileNotFoundError:
    pass
except ValueError:
    pass  # corrupt tail: append a fresh, well-formed line after it

with open(out, "a") as f:
    f.write(json.dumps(entry, sort_keys=True, separators=(",", ":")) + "\n")
print(f"bench_history: appended {stem} at {commit} -> {out}")
PY
done
