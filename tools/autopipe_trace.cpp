// autopipe_trace — offline pipeline-health reports from a recorded trace.
// Reads the deterministic text format (--trace=run.trace from autopipe_sim
// or any bench binary) and answers the questions a tuning session asks:
// where did the time go (summary), why was each GPU idle (bubbles), what
// bounds iteration time (critical-path), what did each partition switch
// cost and buy (switches), what does the run look like (gantt), and what
// changed between two runs (diff). Every subcommand takes --json for a
// machine-readable report with byte-stable formatting.
//
// Examples:
//   autopipe_trace summary run.trace
//   autopipe_trace bubbles run.trace --json
//   autopipe_trace critical-path run.trace --top=5
//   autopipe_trace switches run.trace
//   autopipe_trace gantt run.trace --width=120
//   autopipe_trace diff before.trace after.trace --tolerance=1e-9
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "analysis/calibration.hpp"
#include "analysis/causal.hpp"
#include "analysis/critical_path.hpp"
#include "analysis/gantt.hpp"
#include "analysis/ledger_reader.hpp"
#include "analysis/profile_report.hpp"
#include "analysis/report.hpp"
#include "analysis/timeseries_reader.hpp"
#include "analysis/trace_reader.hpp"
#include "analysis/trace_view.hpp"
#include "common/expect.hpp"
#include "common/ledger.hpp"

using namespace autopipe;

namespace {

// Bumped when any subcommand's output format changes; --json payloads carry
// their own "schema" key on top of this.
constexpr const char* kVersion = "1.2.0";

int usage(std::ostream& os, int code) {
  os <<
      "autopipe_trace — analyze a recorded run (text trace format; see\n"
      "docs/TRACING.md for how to record one)\n\n"
      "  autopipe_trace summary TRACE [--json]\n"
      "      wall clock, iteration-time percentiles, per-worker\n"
      "      utilization, bubble attribution, critical path, switches\n"
      "  autopipe_trace bubbles TRACE [--json]\n"
      "      per-worker idle-time classification (startup fill, upstream/\n"
      "      downstream stall, network contention, reconfig drain, tail)\n"
      "  autopipe_trace critical-path TRACE [--json] [--top=N]\n"
      "      the span chain that bounds the run, aggregated by stage/link\n"
      "  autopipe_trace switches TRACE [--json] [--window=N]\n"
      "      per-switch post-mortems: migration bytes, stall seconds,\n"
      "      throughput before/after, payback iterations\n"
      "  autopipe_trace gantt TRACE [--width=N] [--ledger=PATH]\n"
      "      ASCII timeline, one row per worker; with --ledger, a decision\n"
      "      row marks every planning round\n"
      "  autopipe_trace diff TRACE_A TRACE_B [--json] [--tolerance=X]\n"
      "      compare every analysis metric between two runs\n"
      "  autopipe_trace blame TRACE [--json] [--top=N]\n"
      "                 [--window=T0..T1 | --iteration=N] [--job=K]\n"
      "      walk the causal event graph backward from the slowest point\n"
      "      of the window (default: the whole run) and print the dominant\n"
      "      delay chain, its root cause, and a per-class stall ledger\n"
      "      (see docs/TRACING.md, \"Causality and blame\"). In a\n"
      "      co-tenant trace --job=K anchors the chain at job K's events\n"
      "      (and counts --iteration over job K's marks), so a loser's\n"
      "      slow window roots at the tenant_contention edge naming the\n"
      "      winning job (docs/COTENANCY.md)\n"
      "  autopipe_trace decisions LEDGER [--json] [--check]\n"
      "      the decision ledger, one row per planning round; --check\n"
      "      validates the parse -> reserialize round-trip byte-for-byte\n"
      "  autopipe_trace calibration LEDGER [TRACE] [--json]\n"
      "      prediction-vs-realized calibration: speed MAPE/bias, arbiter\n"
      "      accept rate and regret; with TRACE, also switch-cost error\n"
      "      against the measured stalls (see docs/DECISIONS.md)\n"
      "  autopipe_trace timeseries TS [--json] [--width=N] [--drop=FRAC]\n"
      "      sparkline dashboard over an autopipe-ts-v1 metric time-series\n"
      "      (--timeseries=PATH from autopipe_sim/autopipe_sweep); flags\n"
      "      anomalies such as a speed drop steeper than FRAC (default\n"
      "      0.2) with no decision activity in the same window\n"
      "  autopipe_trace profile PROF [--json] [--top=N] [--flame]\n"
      "                 [--gate=NAME:NS[:TOL]]\n"
      "      host self-profiler report (autopipe-prof-v1 from --profile=):\n"
      "      per-category and per-span inclusive/exclusive time; --flame\n"
      "      prints collapsed stacks for flamegraph.pl; --gate fails (exit\n"
      "      1) when NAME's mean ns/call exceeds NS*(1+TOL) (TOL 0.15)\n"
      "  autopipe_trace version | --version\n"
      "      print the tool version on one line\n"
      "\n"
      "  critical-path also accepts --ledger=PATH to report which planning\n"
      "  rounds fired inside critical-path wait segments\n"
      "\n"
      "exit codes: 0 success; 1 analysis failure, differing diff, failed\n"
      "--check or --gate; 2 usage error (bad flags or arguments). Every\n"
      "--json payload carries a format-version \"schema\" key.\n";
  return code;
}

struct Options {
  std::vector<std::string> positional;
  bool json = false;
  bool check = false;
  std::size_t top = 10;
  std::size_t width = 100;
  std::size_t window = 5;
  double tolerance = 0.0;
  double drop = 0.2;
  bool flame = false;
  std::string ledger;
  std::string gate;
  std::string window_range;       // blame: "T0..T1"
  std::size_t blame_iteration = 0;  // blame: 1-based iteration, 0 = unset
  std::uint64_t job = 0;            // blame: co-tenant job id, 0 = unset
};

bool parse_options(int argc, char** argv, Options& opts) {
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      opts.json = true;
    } else if (arg.rfind("--top=", 0) == 0) {
      opts.top = static_cast<std::size_t>(
          std::strtoull(arg.c_str() + 6, nullptr, 10));
    } else if (arg.rfind("--width=", 0) == 0) {
      opts.width = static_cast<std::size_t>(
          std::strtoull(arg.c_str() + 8, nullptr, 10));
    } else if (arg.rfind("--window=", 0) == 0) {
      // `switches` reads --window as an iteration count; `blame` as a
      // T0..T1 time range. Keep both raw forms and let each command pick.
      opts.window_range = arg.substr(9);
      opts.window = static_cast<std::size_t>(
          std::strtoull(arg.c_str() + 9, nullptr, 10));
    } else if (arg.rfind("--iteration=", 0) == 0) {
      opts.blame_iteration = static_cast<std::size_t>(
          std::strtoull(arg.c_str() + 12, nullptr, 10));
    } else if (arg.rfind("--job=", 0) == 0) {
      opts.job = std::strtoull(arg.c_str() + 6, nullptr, 10);
    } else if (arg.rfind("--tolerance=", 0) == 0) {
      opts.tolerance = std::strtod(arg.c_str() + 12, nullptr);
    } else if (arg.rfind("--ledger=", 0) == 0) {
      opts.ledger = arg.substr(9);
    } else if (arg.rfind("--drop=", 0) == 0) {
      opts.drop = std::strtod(arg.c_str() + 7, nullptr);
    } else if (arg.rfind("--gate=", 0) == 0) {
      opts.gate = arg.substr(7);
    } else if (arg == "--flame") {
      opts.flame = true;
    } else if (arg == "--check") {
      opts.check = true;
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "unknown option " << arg << "\n";
      return false;
    } else {
      opts.positional.push_back(arg);
    }
  }
  return true;
}

analysis::TraceView load(const std::string& path) {
  {
    std::ifstream probe(path);
    if (!probe.good())
      throw std::runtime_error("cannot open trace file '" + path + "'");
  }
  std::vector<trace::Event> events;
  analysis::ReadStats stats;
  try {
    events = analysis::parse_text_file(path, &stats);
  } catch (const contract_error& e) {
    // The reader reports malformed input as a contract violation with
    // file:line bookkeeping; a CLI user only needs the diagnostic part.
    const std::string what = e.what();
    const std::string::size_type cut = what.find(" — ");
    throw std::runtime_error(
        "malformed trace '" + path + "': " +
        (cut == std::string::npos ? what
                                  : what.substr(cut + sizeof(" — ") - 1)));
  }
  if (events.empty()) {
    throw std::runtime_error("trace '" + path +
                             "' contains no events (empty or truncated "
                             "file, or not the text trace format?)");
  }
  if (!stats.clean()) {
    // A newer writer's trace still loads; say what the reader healed over
    // so a surprise in the report below has a visible explanation.
    std::cerr << "autopipe_trace: WARNING: trace '" << path << "': ";
    if (stats.skipped_lines > 0)
      std::cerr << stats.skipped_lines << " line(s) with an unknown "
                << "category/phase skipped";
    if (stats.skipped_lines > 0 && stats.dropped_tokens > 0)
      std::cerr << ", ";
    if (stats.dropped_tokens > 0)
      std::cerr << stats.dropped_tokens << " dangling token(s) dropped";
    std::cerr << " (trace from a newer tool version?)\n";
  }
  return analysis::TraceView(std::move(events));
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(std::cerr, 2);
  const std::string command = argv[1];
  if (command == "--help" || command == "-h" || command == "help") {
    return usage(std::cout, 0);
  }
  if (command == "--version" || command == "version") {
    std::cout << "autopipe_trace " << kVersion
              << " (autopipe-ts-v1, autopipe-prof-v1)\n";
    return 0;
  }

  Options opts;
  if (!parse_options(argc, argv, opts)) return 2;

  try {
    if (command == "timeseries") {
      if (opts.positional.size() != 1) {
        std::cerr << "timeseries needs exactly one time-series file\n";
        return 2;
      }
      const analysis::TimeSeries ts =
          analysis::read_timeseries_file(opts.positional[0]);
      const analysis::TimeSeriesReport report =
          analysis::analyze_timeseries(ts, opts.drop);
      if (opts.json) {
        analysis::write_timeseries_json(report, std::cout);
      } else {
        std::cout << analysis::render_timeseries(ts, report, opts.width);
      }
      return 0;
    }

    if (command == "profile") {
      if (opts.positional.size() != 1) {
        std::cerr << "profile needs exactly one profile file\n";
        return 2;
      }
      const std::vector<prof::ThreadProfile> profiles =
          analysis::read_profile_file(opts.positional[0]);
      const analysis::ProfileReport report =
          analysis::build_profile_report(profiles);
      if (opts.flame) {
        analysis::write_collapsed_stacks(profiles, std::cout);
      } else if (opts.json) {
        analysis::write_profile_json(report, std::cout);
      } else {
        analysis::render_profile(report, profiles, opts.top, std::cout);
      }
      if (!opts.gate.empty()) {
        // --gate=NAME:NS[:TOL] — span names never contain ':', so the
        // first colon ends the name.
        const std::string::size_type c1 = opts.gate.find(':');
        if (c1 == std::string::npos) {
          std::cerr << "--gate needs NAME:NS[:TOL]\n";
          return 2;
        }
        const std::string name = opts.gate.substr(0, c1);
        const std::string rest = opts.gate.substr(c1 + 1);
        const std::string::size_type c2 = rest.find(':');
        const double baseline_ns =
            std::strtod(rest.substr(0, c2).c_str(), nullptr);
        const double tol =
            c2 == std::string::npos
                ? 0.15
                : std::strtod(rest.substr(c2 + 1).c_str(), nullptr);
        if (baseline_ns <= 0.0) {
          std::cerr << "--gate baseline must be a positive ns count\n";
          return 2;
        }
        const double measured = analysis::span_ns_per_call(report, name);
        const double limit = baseline_ns * (1.0 + tol);
        if (measured <= 0.0) {
          std::cerr << "autopipe_trace: gate span '" << name
                    << "' not present in profile\n";
          return 1;
        }
        std::cerr << "gate " << name << ": "
                  << trace::format_double(measured) << " ns/call vs limit "
                  << trace::format_double(limit) << " (baseline "
                  << trace::format_double(baseline_ns) << " +"
                  << trace::format_double(tol * 100.0) << "%)\n";
        if (measured > limit) {
          std::cerr << "autopipe_trace: gate FAILED\n";
          return 1;
        }
        std::cerr << "gate ok\n";
      }
      return 0;
    }

    if (command == "diff") {
      if (opts.positional.size() != 2) {
        std::cerr << "diff needs exactly two trace files\n";
        return 2;
      }
      const analysis::RunAnalysis a =
          analysis::analyze(load(opts.positional[0]), opts.window);
      const analysis::RunAnalysis b =
          analysis::analyze(load(opts.positional[1]), opts.window);
      const auto deltas = analysis::diff_analyses(a, b, opts.tolerance);
      if (opts.json) {
        analysis::write_diff_json(deltas, std::cout);
      } else {
        std::cout << analysis::render_diff_text(deltas);
      }
      return deltas.empty() ? 0 : 1;
    }

    if (command == "decisions") {
      if (opts.positional.size() != 1) {
        std::cerr << "decisions needs exactly one ledger file\n";
        return 2;
      }
      const trace::DecisionLedger ledger =
          analysis::read_ledger_file(opts.positional[0]);
      if (opts.check) {
        std::ifstream in(opts.positional[0], std::ios::binary);
        std::ostringstream original;
        original << in.rdbuf();
        std::ostringstream reserialized;
        ledger.write_text(reserialized);
        if (original.str() != reserialized.str()) {
          std::cerr << "autopipe_trace: ledger '" << opts.positional[0]
                    << "' does not round-trip byte-identically\n";
          return 1;
        }
        std::cout << "ok: " << ledger.size()
                  << " decisions, parse -> reserialize byte-identical\n";
        return 0;
      }
      if (opts.json) {
        analysis::write_decisions_json(ledger, std::cout);
      } else {
        analysis::render_decisions(ledger, std::cout);
      }
      return 0;
    }

    if (command == "calibration") {
      if (opts.positional.empty() || opts.positional.size() > 2) {
        std::cerr << "calibration needs a ledger file and optionally a "
                     "trace file\n";
        return 2;
      }
      const trace::DecisionLedger ledger =
          analysis::read_ledger_file(opts.positional[0]);
      const analysis::CalibrationReport report =
          opts.positional.size() == 2
              ? analysis::calibrate(ledger, load(opts.positional[1]))
              : analysis::calibrate(ledger);
      if (opts.json) {
        analysis::write_calibration_json(report, std::cout);
      } else {
        analysis::render_calibration(report, std::cout);
      }
      return 0;
    }

    if (opts.positional.size() != 1) {
      std::cerr << command << " needs exactly one trace file\n";
      return 2;
    }
    const analysis::TraceView view = load(opts.positional[0]);

    if (command == "gantt") {
      if (opts.ledger.empty()) {
        std::cout << analysis::render_gantt(view, opts.width);
      } else {
        std::cout << analysis::render_gantt(
            view, analysis::read_ledger_file(opts.ledger), opts.width);
      }
      return 0;
    }

    if (command == "blame") {
      if (!opts.window_range.empty() && opts.blame_iteration != 0) {
        std::cerr << "blame takes --window or --iteration, not both\n";
        return 2;
      }
      analysis::CausalGraph graph(view.events());
      if (graph.causal_events() == 0) {
        std::cerr << "autopipe_trace: trace carries no causal ids (recorded "
                     "by a pre-causality build, or with tracing compiled "
                     "out)\n";
        return 1;
      }
      if (graph.dangling_causes() > 0) {
        std::cerr << "autopipe_trace: WARNING: " << graph.dangling_causes()
                  << " cause reference(s) resolve to no event (truncated "
                     "trace?)\n";
      }
      analysis::BlameReport report;
      if (opts.blame_iteration != 0) {
        report = opts.job != 0
                     ? analysis::blame_iteration(graph, opts.blame_iteration,
                                                 opts.job)
                     : analysis::blame_iteration(graph, view,
                                                 opts.blame_iteration);
      } else if (!opts.window_range.empty()) {
        const std::string::size_type dots = opts.window_range.find("..");
        if (dots == std::string::npos) {
          std::cerr << "--window for blame needs T0..T1 (seconds)\n";
          return 2;
        }
        const double t0 =
            std::strtod(opts.window_range.substr(0, dots).c_str(), nullptr);
        const double t1 =
            std::strtod(opts.window_range.substr(dots + 2).c_str(), nullptr);
        if (t1 < t0) {
          std::cerr << "--window T0..T1 must not end before it begins\n";
          return 2;
        }
        report = analysis::blame_window(graph, t0, t1, opts.job);
      } else {
        report = analysis::blame_window(graph, 0.0, view.wall_clock(),
                                        opts.job);
      }
      if (opts.json) {
        analysis::write_blame_json(report, graph, std::cout);
      } else {
        analysis::render_blame(report, graph, opts.top, std::cout);
      }
      return 0;
    }

    const analysis::RunAnalysis a = analysis::analyze(view, opts.window);
    if (command == "summary") {
      if (opts.json) {
        analysis::write_summary_json(a, std::cout);
      } else {
        std::cout << analysis::render_summary_text(a) << '\n'
                  << analysis::render_critical_path_text(a, opts.top) << '\n'
                  << analysis::render_switches_text(a);
      }
    } else if (command == "bubbles") {
      if (opts.json) {
        analysis::write_bubbles_json(a, std::cout);
      } else {
        std::cout << analysis::render_bubbles_text(a);
      }
    } else if (command == "critical-path") {
      if (opts.json) {
        analysis::write_critical_path_json(a, std::cout);
      } else {
        std::cout << analysis::render_critical_path_text(a, opts.top);
        if (!opts.ledger.empty()) {
          const trace::DecisionLedger ledger =
              analysis::read_ledger_file(opts.ledger);
          const analysis::CriticalPath path =
              analysis::extract_critical_path(view);
          const auto marks = analysis::decision_path_marks(path, ledger);
          std::size_t on_wait = 0;
          for (const auto& m : marks)
            if (m.on_wait) ++on_wait;
          std::cout << "\ndecisions during critical-path waits: " << on_wait
                    << " of " << marks.size() << '\n';
          for (const auto& m : marks) {
            if (!m.on_wait) continue;
            std::cout << "  decision " << m.id << " at t="
                      << trace::format_double(m.time)
                      << " fired inside a wait segment\n";
          }
        }
      }
    } else if (command == "switches") {
      if (opts.json) {
        analysis::write_switches_json(a, std::cout);
      } else {
        std::cout << analysis::render_switches_text(a);
      }
    } else {
      std::cerr << "unknown subcommand '" << command << "'\n\n";
      return usage(std::cerr, 2);
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "autopipe_trace: " << e.what() << "\n";
    return 1;
  }
}
