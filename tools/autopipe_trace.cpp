// autopipe_trace — offline pipeline-health reports from a recorded trace.
// Reads the deterministic text format (--trace=run.trace from autopipe_sim
// or any bench binary) and answers the questions a tuning session asks:
// where did the time go (summary), why was each GPU idle (bubbles), what
// bounds iteration time (critical-path), what did each partition switch
// cost and buy (switches), what does the run look like (gantt), and what
// changed between two runs (diff). Every subcommand takes --json for a
// machine-readable report with byte-stable formatting.
//
// Examples:
//   autopipe_trace summary run.trace
//   autopipe_trace bubbles run.trace --json
//   autopipe_trace critical-path run.trace --top=5
//   autopipe_trace switches run.trace
//   autopipe_trace gantt run.trace --width=120
//   autopipe_trace diff before.trace after.trace --tolerance=1e-9
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "analysis/gantt.hpp"
#include "analysis/report.hpp"
#include "analysis/trace_reader.hpp"
#include "analysis/trace_view.hpp"
#include "common/expect.hpp"

using namespace autopipe;

namespace {

int usage(std::ostream& os, int code) {
  os <<
      "autopipe_trace — analyze a recorded run (text trace format; see\n"
      "docs/TRACING.md for how to record one)\n\n"
      "  autopipe_trace summary TRACE [--json]\n"
      "      wall clock, iteration-time percentiles, per-worker\n"
      "      utilization, bubble attribution, critical path, switches\n"
      "  autopipe_trace bubbles TRACE [--json]\n"
      "      per-worker idle-time classification (startup fill, upstream/\n"
      "      downstream stall, network contention, reconfig drain, tail)\n"
      "  autopipe_trace critical-path TRACE [--json] [--top=N]\n"
      "      the span chain that bounds the run, aggregated by stage/link\n"
      "  autopipe_trace switches TRACE [--json] [--window=N]\n"
      "      per-switch post-mortems: migration bytes, stall seconds,\n"
      "      throughput before/after, payback iterations\n"
      "  autopipe_trace gantt TRACE [--width=N]\n"
      "      ASCII timeline, one row per worker\n"
      "  autopipe_trace diff TRACE_A TRACE_B [--json] [--tolerance=X]\n"
      "      compare every analysis metric between two runs\n";
  return code;
}

struct Options {
  std::vector<std::string> positional;
  bool json = false;
  std::size_t top = 10;
  std::size_t width = 100;
  std::size_t window = 5;
  double tolerance = 0.0;
};

bool parse_options(int argc, char** argv, Options& opts) {
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      opts.json = true;
    } else if (arg.rfind("--top=", 0) == 0) {
      opts.top = static_cast<std::size_t>(
          std::strtoull(arg.c_str() + 6, nullptr, 10));
    } else if (arg.rfind("--width=", 0) == 0) {
      opts.width = static_cast<std::size_t>(
          std::strtoull(arg.c_str() + 8, nullptr, 10));
    } else if (arg.rfind("--window=", 0) == 0) {
      opts.window = static_cast<std::size_t>(
          std::strtoull(arg.c_str() + 9, nullptr, 10));
    } else if (arg.rfind("--tolerance=", 0) == 0) {
      opts.tolerance = std::strtod(arg.c_str() + 12, nullptr);
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "unknown option " << arg << "\n";
      return false;
    } else {
      opts.positional.push_back(arg);
    }
  }
  return true;
}

analysis::TraceView load(const std::string& path) {
  {
    std::ifstream probe(path);
    if (!probe.good())
      throw std::runtime_error("cannot open trace file '" + path + "'");
  }
  std::vector<trace::Event> events;
  try {
    events = analysis::parse_text_file(path);
  } catch (const contract_error& e) {
    // The reader reports malformed input as a contract violation with
    // file:line bookkeeping; a CLI user only needs the diagnostic part.
    const std::string what = e.what();
    const std::string::size_type cut = what.find(" — ");
    throw std::runtime_error(
        "malformed trace '" + path + "': " +
        (cut == std::string::npos ? what
                                  : what.substr(cut + sizeof(" — ") - 1)));
  }
  if (events.empty()) {
    throw std::runtime_error("trace '" + path +
                             "' contains no events (empty or truncated "
                             "file, or not the text trace format?)");
  }
  return analysis::TraceView(std::move(events));
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(std::cerr, 2);
  const std::string command = argv[1];
  if (command == "--help" || command == "-h" || command == "help") {
    return usage(std::cout, 0);
  }

  Options opts;
  if (!parse_options(argc, argv, opts)) return 2;

  try {
    if (command == "diff") {
      if (opts.positional.size() != 2) {
        std::cerr << "diff needs exactly two trace files\n";
        return 2;
      }
      const analysis::RunAnalysis a =
          analysis::analyze(load(opts.positional[0]), opts.window);
      const analysis::RunAnalysis b =
          analysis::analyze(load(opts.positional[1]), opts.window);
      const auto deltas = analysis::diff_analyses(a, b, opts.tolerance);
      if (opts.json) {
        analysis::write_diff_json(deltas, std::cout);
      } else {
        std::cout << analysis::render_diff_text(deltas);
      }
      return deltas.empty() ? 0 : 1;
    }

    if (opts.positional.size() != 1) {
      std::cerr << command << " needs exactly one trace file\n";
      return 2;
    }
    const analysis::TraceView view = load(opts.positional[0]);

    if (command == "gantt") {
      std::cout << analysis::render_gantt(view, opts.width);
      return 0;
    }

    const analysis::RunAnalysis a = analysis::analyze(view, opts.window);
    if (command == "summary") {
      if (opts.json) {
        analysis::write_summary_json(a, std::cout);
      } else {
        std::cout << analysis::render_summary_text(a) << '\n'
                  << analysis::render_critical_path_text(a, opts.top) << '\n'
                  << analysis::render_switches_text(a);
      }
    } else if (command == "bubbles") {
      if (opts.json) {
        analysis::write_bubbles_json(a, std::cout);
      } else {
        std::cout << analysis::render_bubbles_text(a);
      }
    } else if (command == "critical-path") {
      if (opts.json) {
        analysis::write_critical_path_json(a, std::cout);
      } else {
        std::cout << analysis::render_critical_path_text(a, opts.top);
      }
    } else if (command == "switches") {
      if (opts.json) {
        analysis::write_switches_json(a, std::cout);
      } else {
        std::cout << analysis::render_switches_text(a);
      }
    } else {
      std::cerr << "unknown subcommand '" << command << "'\n\n";
      return usage(std::cerr, 2);
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "autopipe_trace: " << e.what() << "\n";
    return 1;
  }
}
