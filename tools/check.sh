#!/usr/bin/env bash
# One-shot health check: configure, build, run the full test suite, then
# smoke the trace analyzer against the checked-in golden trace. Run from
# anywhere; exits non-zero on the first failure.
set -euo pipefail

repo="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build="${BUILD_DIR:-$repo/build}"
jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

echo "== configure =="
cmake -B "$build" -S "$repo"

echo "== build =="
cmake --build "$build" -j "$jobs"

echo "== test =="
ctest --test-dir "$build" --output-on-failure -j "$jobs"

echo "== analyzer smoke =="
"$build/tools/autopipe_trace" summary \
    "$repo/tests/golden/bandwidth_drop.trace" > /dev/null
"$build/tools/autopipe_trace" diff \
    "$repo/tests/golden/bandwidth_drop.trace" \
    "$repo/tests/golden/bandwidth_drop.trace" --json > /dev/null

echo "OK"
