#!/usr/bin/env bash
# One-shot health check: configure, build, run the full test suite, then
# smoke the trace analyzer against the checked-in golden trace. Run from
# anywhere; exits non-zero on the first failure.
#
#   tools/check.sh             # plain RelWithDebInfo build
#   tools/check.sh --sanitize  # ASan+UBSan build in build-asan/
set -euo pipefail

repo="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build="${BUILD_DIR:-$repo/build}"
jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

cmake_args=()
if [[ "${1:-}" == "--sanitize" ]]; then
  build="${BUILD_DIR:-$repo/build-asan}"
  cmake_args+=(-DAUTOPIPE_SANITIZE=ON)
  export ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1}"
  export UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1}"
elif [[ $# -gt 0 ]]; then
  echo "usage: tools/check.sh [--sanitize]" >&2
  exit 2
fi

echo "== configure =="
cmake -B "$build" -S "$repo" "${cmake_args[@]}"

echo "== build =="
cmake --build "$build" -j "$jobs"

echo "== test =="
ctest --test-dir "$build" --output-on-failure -j "$jobs"

echo "== chaos smoke =="
"$build/bench/chaos_faults" --seeds=5 > /dev/null

echo "== analyzer smoke =="
"$build/tools/autopipe_trace" summary \
    "$repo/tests/golden/bandwidth_drop.trace" > /dev/null
"$build/tools/autopipe_trace" diff \
    "$repo/tests/golden/bandwidth_drop.trace" \
    "$repo/tests/golden/bandwidth_drop.trace" --json > /dev/null

echo "OK"
