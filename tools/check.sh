#!/usr/bin/env bash
# One-shot health check: configure, build, run the full test suite, then
# smoke the trace analyzer against the checked-in golden trace and the
# decision ledger against a controller scenario. Run from anywhere; exits
# non-zero on the first failure.
#
#   tools/check.sh                # plain RelWithDebInfo build
#   tools/check.sh --sanitize     # ASan+UBSan build in build-asan/
#   tools/check.sh --ledger-smoke # build + ledger smoke only (fast)
#   tools/check.sh --sweep-smoke  # build + baseline-gated sweep only (fast)
#   tools/check.sh --parity       # build + heap-vs-wheel differential only
#   tools/check.sh --telemetry    # build + time-series/profiler smoke only
#   tools/check.sh --chaos-switch # build + mid-switch crash-point matrix only
#   tools/check.sh --causal       # build + causal blame & overhead gate only
#   tools/check.sh --cotenancy    # build + baseline-gated co-tenant fleet only
set -euo pipefail

repo="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build="${BUILD_DIR:-$repo/build}"
jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

cmake_args=()
ledger_smoke_only=0
sweep_smoke_only=0
parity_only=0
telemetry_only=0
chaos_switch_only=0
causal_only=0
cotenancy_only=0
if [[ "${1:-}" == "--sanitize" ]]; then
  build="${BUILD_DIR:-$repo/build-asan}"
  cmake_args+=(-DAUTOPIPE_SANITIZE=ON)
  export ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1}"
  export UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1}"
elif [[ "${1:-}" == "--ledger-smoke" ]]; then
  ledger_smoke_only=1
elif [[ "${1:-}" == "--sweep-smoke" ]]; then
  sweep_smoke_only=1
elif [[ "${1:-}" == "--parity" ]]; then
  parity_only=1
elif [[ "${1:-}" == "--telemetry" ]]; then
  telemetry_only=1
elif [[ "${1:-}" == "--chaos-switch" ]]; then
  chaos_switch_only=1
elif [[ "${1:-}" == "--causal" ]]; then
  causal_only=1
elif [[ "${1:-}" == "--cotenancy" ]]; then
  cotenancy_only=1
elif [[ $# -gt 0 ]]; then
  echo "usage: tools/check.sh [--sanitize|--ledger-smoke|--sweep-smoke|--parity|--telemetry|--chaos-switch|--causal|--cotenancy]" >&2
  exit 2
fi

# Deterministic controller scenario with the decision ledger on; every
# record must reach a terminal outcome and the text form must round-trip
# through the reader byte-for-byte (autopipe_trace decisions --check).
ledger_smoke() {
  echo "== ledger smoke =="
  local tmp
  tmp="$(mktemp -d)"
  trap 'rm -rf "$tmp"' RETURN
  "$build/tools/autopipe_sim" --model vgg16 --iterations 150 \
      --bw-drop-iter 60 --bw-drop-gbps 5 \
      --trace "$tmp/run.trace" --ledger "$tmp/run.ledger" > /dev/null
  "$build/tools/autopipe_trace" decisions "$tmp/run.ledger" --check
  "$build/tools/autopipe_trace" calibration \
      "$tmp/run.ledger" "$tmp/run.trace" --json > "$tmp/BENCH_decisions.json"
  "$repo/tools/bench_history.sh" "$tmp/BENCH_decisions.json"
}

# Heap-vs-wheel differential: the same chaos scenarios through the binary
# heap (reference) and the timing wheel (candidate) must produce
# byte-identical traces, ledgers, metrics and iteration timelines. On
# divergence the harness drops per-seed artifacts under
# $build/parity-artifacts (see docs/SIMULATOR.md).
parity_smoke() {
  echo "== parity smoke =="
  "$build/bench/parity_harness" --seeds=12 --jobs=4 \
      --artifacts="$build/parity-artifacts"
}

# The committed smoke sweep gated against its committed baseline: simulated
# throughput must stay within 10% of bench/baselines/sweep_smoke_baseline.json
# (regenerate the baseline after an intentional perf change — see
# docs/BENCHMARKS.md).
sweep_smoke() {
  echo "== sweep smoke =="
  local tmp
  tmp="$(mktemp -d)"
  trap 'rm -rf "$tmp"' RETURN
  "$build/tools/autopipe_sweep" --spec="@$repo/bench/sweeps/smoke.sweep" \
      --jobs=4 --tolerance=0.10 --out="$tmp/BENCH_sweep.json" \
      --baseline="$repo/bench/baselines/sweep_smoke_baseline.json"
  "$repo/tools/bench_history.sh" "$tmp/BENCH_sweep.json"
}

# Co-tenant fleet smoke: the 4-job mixed-model fleets with one injected
# preemption must commit exactly one winning reconfiguration for the
# preempted GPU under every arbiter policy (the bench exits non-zero
# otherwise), and fleet throughput is gated against the committed
# bench/baselines/cotenancy_baseline.json (regenerate with
# `cotenancy_fleet --out` after an intentional change — docs/COTENANCY.md).
# The ctest invariant suite behind the same subsystem carries the label
# `cotenancy` (ctest -L cotenancy).
cotenancy_smoke() {
  echo "== cotenancy smoke =="
  local tmp
  tmp="$(mktemp -d)"
  trap 'rm -rf "$tmp"' RETURN
  "$build/bench/cotenancy_fleet" --tolerance=0.10 \
      --out="$tmp/BENCH_cotenancy.json" \
      --baseline="$repo/bench/baselines/cotenancy_baseline.json"
  "$repo/tools/bench_history.sh" "$tmp/BENCH_cotenancy.json"
}

# Mid-switch crash-point matrix: every (switch mode x protocol phase x
# fault kind) cell gets a deterministic fault fired at that phase boundary;
# each run must conserve per-layer weights across abort/rollback/retry,
# land in a consistent layout, resolve every attempt in the ledger, and
# replay byte-identically heap-vs-wheel (see docs/FAULTS.md).
chaos_switch_smoke() {
  echo "== chaos-switch smoke =="
  "$build/bench/chaos_switch" --seeds=5 \
      --artifacts="$build/chaos-switch-artifacts"
}

# Telemetry smoke: a churny run with the metric time-series sampler and the
# host self-profiler on, every `autopipe_trace timeseries`/`profile` surface
# exercised, and planner decide-round time gated at +15% against the
# committed bench/baselines/telemetry_planner_baseline.json (see
# docs/TELEMETRY.md for how to regenerate after an intentional change).
telemetry_smoke() {
  echo "== telemetry smoke =="
  local tmp
  tmp="$(mktemp -d)"
  trap 'rm -rf "$tmp"' RETURN
  "$build/tools/autopipe_sim" --model vgg16 --iterations 120 \
      --bw-drop-iter 30 --bw-drop-gbps 10 \
      --timeseries "$tmp/run.ts:0.5" --profile "$tmp/run.prof" > /dev/null
  "$build/tools/autopipe_trace" timeseries "$tmp/run.ts"
  "$build/tools/autopipe_trace" timeseries "$tmp/run.ts" --json \
      > "$tmp/BENCH_timeseries.json"
  "$repo/tools/bench_history.sh" "$tmp/BENCH_timeseries.json"
  "$build/tools/autopipe_trace" profile "$tmp/run.prof" --top=5
  "$build/tools/autopipe_trace" profile "$tmp/run.prof" --flame > /dev/null
  local baseline_ns
  baseline_ns="$(sed -n 's/.*"planner_ns_per_round": *\([0-9.]*\).*/\1/p' \
      "$repo/bench/baselines/telemetry_planner_baseline.json")"
  "$build/tools/autopipe_trace" profile "$tmp/run.prof" \
      --gate="planner/decide_round:$baseline_ns:0.15" > /dev/null
}

# Min-of-3 wall time for the fat-capture churn micro-benchmark — the
# simulator hot path the causal bookkeeping rides on.
churn_ns() {
  local exe="$1"
  { for _ in 1 2 3; do
      "$exe" --benchmark_filter='^BM_SimulatorFatCaptureChurn$' 2>/dev/null
    done; } | awk '/^BM_SimulatorFatCaptureChurn /{print $2}' | sort -n \
      | head -1
}

# Causality smoke: `autopipe_trace blame` must walk the event DAG from a
# slow window back to the injected disturbance, and the causal bookkeeping
# must stay off the hot path — the churn bench with tracing compiled in
# (but runtime-disabled) is gated within AUTOPIPE_CAUSAL_TOL (default 10%)
# of an AUTOPIPE_TRACING=OFF build, where the eid/cause fields do not
# exist at all (the 0%-when-off half of the contract). See docs/TRACING.md.
causal_smoke() {
  echo "== causal smoke =="
  local tmp
  tmp="$(mktemp -d)"
  trap 'rm -rf "$tmp"' RETURN

  # The committed golden bandwidth-drop scenario: the injected NIC
  # bandwidth cut must root the dominant delay chain.
  "$build/tools/autopipe_trace" blame \
      "$repo/tests/golden/bandwidth_drop.trace" > "$tmp/golden.blame"
  grep -q "root cause: resource:resource_event" "$tmp/golden.blame"

  # A live instrumented vgg16 bandwidth-drop run with a hard link outage
  # at t=5..7: blame on the recovery window must name the injected link
  # fault and charge the outage in the stall ledger.
  "$build/tools/autopipe_sim" --model vgg16 --system even --iterations 40 \
      --bw-drop-iter 30 --bw-drop-gbps 10 \
      --faults "5.0 link_down 1;7.0 link_up 1" \
      --trace "$tmp/run.trace" > /dev/null
  "$build/tools/autopipe_trace" blame "$tmp/run.trace" --window=7.0..8.5 \
      | tee "$tmp/run.blame"
  grep -q "root cause: fault:link_down" "$tmp/run.blame"
  grep -q "link_outage" "$tmp/run.blame"
  "$build/tools/autopipe_trace" blame "$tmp/run.trace" --iteration=2 \
      > /dev/null
  "$build/tools/autopipe_trace" blame "$tmp/run.trace" --json > /dev/null

  echo "== causal overhead gate =="
  local notrace="${NOTRACE_BUILD_DIR:-$repo/build-notrace}"
  cmake -B "$notrace" -S "$repo" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DAUTOPIPE_TRACING=OFF > /dev/null
  cmake --build "$notrace" -j "$jobs" --target micro_benchmarks > /dev/null
  local on_ns off_ns tol="${AUTOPIPE_CAUSAL_TOL:-0.10}"
  on_ns="$(churn_ns "$build/bench/micro_benchmarks")"
  off_ns="$(churn_ns "$notrace/bench/micro_benchmarks")"
  echo "fat-capture churn: tracing-on ${on_ns} ns vs compiled-out" \
       "${off_ns} ns (tolerance ${tol})"
  awk -v on="$on_ns" -v off="$off_ns" -v tol="$tol" 'BEGIN {
    if (on == "" || off == "" || off <= 0) {
      print "causal overhead gate: missing benchmark readings"; exit 1
    }
    if (on > off * (1 + tol)) {
      printf "causal overhead gate: %s ns exceeds %s ns by more than %.0f%%\n",
             on, off, tol * 100
      exit 1
    }
  }'
}

echo "== configure =="
cmake -B "$build" -S "$repo" "${cmake_args[@]}"

echo "== build =="
cmake --build "$build" -j "$jobs"

if [[ "$ledger_smoke_only" == 1 ]]; then
  ledger_smoke
  echo "OK"
  exit 0
fi

if [[ "$sweep_smoke_only" == 1 ]]; then
  sweep_smoke
  echo "OK"
  exit 0
fi

if [[ "$parity_only" == 1 ]]; then
  parity_smoke
  echo "OK"
  exit 0
fi

if [[ "$telemetry_only" == 1 ]]; then
  telemetry_smoke
  echo "OK"
  exit 0
fi

if [[ "$chaos_switch_only" == 1 ]]; then
  chaos_switch_smoke
  echo "OK"
  exit 0
fi

if [[ "$causal_only" == 1 ]]; then
  causal_smoke
  echo "OK"
  exit 0
fi

if [[ "$cotenancy_only" == 1 ]]; then
  cotenancy_smoke
  echo "OK"
  exit 0
fi

echo "== test =="
ctest --test-dir "$build" --output-on-failure -j "$jobs"

echo "== chaos smoke =="
"$build/bench/chaos_faults" --seeds=5 > /dev/null

echo "== chaos-switch smoke =="
"$build/bench/chaos_switch" --seeds=5 \
    --artifacts="$build/chaos-switch-artifacts" > /dev/null

echo "== analyzer smoke =="
"$build/tools/autopipe_trace" summary \
    "$repo/tests/golden/bandwidth_drop.trace" > /dev/null
"$build/tools/autopipe_trace" diff \
    "$repo/tests/golden/bandwidth_drop.trace" \
    "$repo/tests/golden/bandwidth_drop.trace" --json > /dev/null

ledger_smoke

sweep_smoke

parity_smoke

telemetry_smoke

cotenancy_smoke

causal_smoke

echo "OK"
