file(REMOVE_RECURSE
  "CMakeFiles/fig9_dynamic_bandwidth.dir/fig9_dynamic_bandwidth.cpp.o"
  "CMakeFiles/fig9_dynamic_bandwidth.dir/fig9_dynamic_bandwidth.cpp.o.d"
  "fig9_dynamic_bandwidth"
  "fig9_dynamic_bandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_dynamic_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
