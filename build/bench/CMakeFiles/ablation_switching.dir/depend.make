# Empty dependencies file for ablation_switching.
# This may be replaced when dependencies are built.
