file(REMOVE_RECURSE
  "CMakeFiles/fig5_job_join.dir/fig5_job_join.cpp.o"
  "CMakeFiles/fig5_job_join.dir/fig5_job_join.cpp.o.d"
  "fig5_job_join"
  "fig5_job_join.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_job_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
