# Empty compiler generated dependencies file for fig5_job_join.
# This may be replaced when dependencies are built.
