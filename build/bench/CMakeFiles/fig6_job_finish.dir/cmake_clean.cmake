file(REMOVE_RECURSE
  "CMakeFiles/fig6_job_finish.dir/fig6_job_finish.cpp.o"
  "CMakeFiles/fig6_job_finish.dir/fig6_job_finish.cpp.o.d"
  "fig6_job_finish"
  "fig6_job_finish.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_job_finish.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
