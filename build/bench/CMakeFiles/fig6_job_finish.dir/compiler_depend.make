# Empty compiler generated dependencies file for fig6_job_finish.
# This may be replaced when dependencies are built.
