# Empty dependencies file for autopipe_bench_common.
# This may be replaced when dependencies are built.
