file(REMOVE_RECURSE
  "CMakeFiles/autopipe_bench_common.dir/bench_common.cpp.o"
  "CMakeFiles/autopipe_bench_common.dir/bench_common.cpp.o.d"
  "libautopipe_bench_common.a"
  "libautopipe_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autopipe_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
