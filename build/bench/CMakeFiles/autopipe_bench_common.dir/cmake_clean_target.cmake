file(REMOVE_RECURSE
  "libautopipe_bench_common.a"
)
