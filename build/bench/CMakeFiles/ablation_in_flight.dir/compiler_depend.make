# Empty compiler generated dependencies file for ablation_in_flight.
# This may be replaced when dependencies are built.
