file(REMOVE_RECURSE
  "CMakeFiles/ablation_in_flight.dir/ablation_in_flight.cpp.o"
  "CMakeFiles/ablation_in_flight.dir/ablation_in_flight.cpp.o.d"
  "ablation_in_flight"
  "ablation_in_flight.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_in_flight.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
