file(REMOVE_RECURSE
  "CMakeFiles/fig8_static_grid.dir/fig8_static_grid.cpp.o"
  "CMakeFiles/fig8_static_grid.dir/fig8_static_grid.cpp.o.d"
  "fig8_static_grid"
  "fig8_static_grid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_static_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
