# Empty dependencies file for fig8_static_grid.
# This may be replaced when dependencies are built.
