# Empty compiler generated dependencies file for fig13_enhanced.
# This may be replaced when dependencies are built.
