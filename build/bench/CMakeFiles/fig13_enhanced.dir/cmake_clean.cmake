file(REMOVE_RECURSE
  "CMakeFiles/fig13_enhanced.dir/fig13_enhanced.cpp.o"
  "CMakeFiles/fig13_enhanced.dir/fig13_enhanced.cpp.o.d"
  "fig13_enhanced"
  "fig13_enhanced.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_enhanced.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
