# Empty dependencies file for fig2_pipeline_fill.
# This may be replaced when dependencies are built.
