file(REMOVE_RECURSE
  "CMakeFiles/fig2_pipeline_fill.dir/fig2_pipeline_fill.cpp.o"
  "CMakeFiles/fig2_pipeline_fill.dir/fig2_pipeline_fill.cpp.o.d"
  "fig2_pipeline_fill"
  "fig2_pipeline_fill.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_pipeline_fill.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
