file(REMOVE_RECURSE
  "CMakeFiles/fig3_bandwidth_drop.dir/fig3_bandwidth_drop.cpp.o"
  "CMakeFiles/fig3_bandwidth_drop.dir/fig3_bandwidth_drop.cpp.o.d"
  "fig3_bandwidth_drop"
  "fig3_bandwidth_drop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_bandwidth_drop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
