# Empty dependencies file for fig3_bandwidth_drop.
# This may be replaced when dependencies are built.
