file(REMOVE_RECURSE
  "CMakeFiles/fig10_dynamic_gpu.dir/fig10_dynamic_gpu.cpp.o"
  "CMakeFiles/fig10_dynamic_gpu.dir/fig10_dynamic_gpu.cpp.o.d"
  "fig10_dynamic_gpu"
  "fig10_dynamic_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_dynamic_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
