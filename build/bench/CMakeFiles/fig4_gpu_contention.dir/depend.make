# Empty dependencies file for fig4_gpu_contention.
# This may be replaced when dependencies are built.
