file(REMOVE_RECURSE
  "CMakeFiles/fig4_gpu_contention.dir/fig4_gpu_contention.cpp.o"
  "CMakeFiles/fig4_gpu_contention.dir/fig4_gpu_contention.cpp.o.d"
  "fig4_gpu_contention"
  "fig4_gpu_contention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_gpu_contention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
