file(REMOVE_RECURSE
  "CMakeFiles/fig12_solver_time.dir/fig12_solver_time.cpp.o"
  "CMakeFiles/fig12_solver_time.dir/fig12_solver_time.cpp.o.d"
  "fig12_solver_time"
  "fig12_solver_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_solver_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
