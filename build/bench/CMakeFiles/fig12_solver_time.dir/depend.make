# Empty dependencies file for fig12_solver_time.
# This may be replaced when dependencies are built.
