# Empty compiler generated dependencies file for train_components.
# This may be replaced when dependencies are built.
