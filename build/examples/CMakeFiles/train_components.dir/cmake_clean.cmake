file(REMOVE_RECURSE
  "CMakeFiles/train_components.dir/train_components.cpp.o"
  "CMakeFiles/train_components.dir/train_components.cpp.o.d"
  "train_components"
  "train_components.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/train_components.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
