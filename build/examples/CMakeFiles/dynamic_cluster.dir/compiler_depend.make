# Empty compiler generated dependencies file for dynamic_cluster.
# This may be replaced when dependencies are built.
