file(REMOVE_RECURSE
  "CMakeFiles/enhance_pipeline.dir/enhance_pipeline.cpp.o"
  "CMakeFiles/enhance_pipeline.dir/enhance_pipeline.cpp.o.d"
  "enhance_pipeline"
  "enhance_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enhance_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
