# Empty compiler generated dependencies file for enhance_pipeline.
# This may be replaced when dependencies are built.
