file(REMOVE_RECURSE
  "CMakeFiles/autopipe_comm.dir/collective.cpp.o"
  "CMakeFiles/autopipe_comm.dir/collective.cpp.o.d"
  "CMakeFiles/autopipe_comm.dir/framework.cpp.o"
  "CMakeFiles/autopipe_comm.dir/framework.cpp.o.d"
  "libautopipe_comm.a"
  "libautopipe_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autopipe_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
