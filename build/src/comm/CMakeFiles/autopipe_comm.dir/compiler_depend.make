# Empty compiler generated dependencies file for autopipe_comm.
# This may be replaced when dependencies are built.
