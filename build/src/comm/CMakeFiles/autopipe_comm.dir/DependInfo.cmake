
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/comm/collective.cpp" "src/comm/CMakeFiles/autopipe_comm.dir/collective.cpp.o" "gcc" "src/comm/CMakeFiles/autopipe_comm.dir/collective.cpp.o.d"
  "/root/repo/src/comm/framework.cpp" "src/comm/CMakeFiles/autopipe_comm.dir/framework.cpp.o" "gcc" "src/comm/CMakeFiles/autopipe_comm.dir/framework.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/autopipe_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/autopipe_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
