file(REMOVE_RECURSE
  "libautopipe_comm.a"
)
