# Empty compiler generated dependencies file for autopipe_models.
# This may be replaced when dependencies are built.
