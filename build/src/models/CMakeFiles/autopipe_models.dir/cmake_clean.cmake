file(REMOVE_RECURSE
  "CMakeFiles/autopipe_models.dir/model.cpp.o"
  "CMakeFiles/autopipe_models.dir/model.cpp.o.d"
  "CMakeFiles/autopipe_models.dir/zoo.cpp.o"
  "CMakeFiles/autopipe_models.dir/zoo.cpp.o.d"
  "libautopipe_models.a"
  "libautopipe_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autopipe_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
