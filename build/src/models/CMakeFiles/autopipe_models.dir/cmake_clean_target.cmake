file(REMOVE_RECURSE
  "libautopipe_models.a"
)
