
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/convergence/dataset.cpp" "src/convergence/CMakeFiles/autopipe_convergence.dir/dataset.cpp.o" "gcc" "src/convergence/CMakeFiles/autopipe_convergence.dir/dataset.cpp.o.d"
  "/root/repo/src/convergence/staleness_sgd.cpp" "src/convergence/CMakeFiles/autopipe_convergence.dir/staleness_sgd.cpp.o" "gcc" "src/convergence/CMakeFiles/autopipe_convergence.dir/staleness_sgd.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/autopipe_common.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/autopipe_nn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
