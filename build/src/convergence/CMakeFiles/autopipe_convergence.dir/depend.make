# Empty dependencies file for autopipe_convergence.
# This may be replaced when dependencies are built.
