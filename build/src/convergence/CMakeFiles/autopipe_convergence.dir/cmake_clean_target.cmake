file(REMOVE_RECURSE
  "libautopipe_convergence.a"
)
