file(REMOVE_RECURSE
  "CMakeFiles/autopipe_convergence.dir/dataset.cpp.o"
  "CMakeFiles/autopipe_convergence.dir/dataset.cpp.o.d"
  "CMakeFiles/autopipe_convergence.dir/staleness_sgd.cpp.o"
  "CMakeFiles/autopipe_convergence.dir/staleness_sgd.cpp.o.d"
  "libautopipe_convergence.a"
  "libautopipe_convergence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autopipe_convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
