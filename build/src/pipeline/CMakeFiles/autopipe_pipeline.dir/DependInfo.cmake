
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pipeline/executor.cpp" "src/pipeline/CMakeFiles/autopipe_pipeline.dir/executor.cpp.o" "gcc" "src/pipeline/CMakeFiles/autopipe_pipeline.dir/executor.cpp.o.d"
  "/root/repo/src/pipeline/memory.cpp" "src/pipeline/CMakeFiles/autopipe_pipeline.dir/memory.cpp.o" "gcc" "src/pipeline/CMakeFiles/autopipe_pipeline.dir/memory.cpp.o.d"
  "/root/repo/src/pipeline/schedule.cpp" "src/pipeline/CMakeFiles/autopipe_pipeline.dir/schedule.cpp.o" "gcc" "src/pipeline/CMakeFiles/autopipe_pipeline.dir/schedule.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/autopipe_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/autopipe_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/autopipe_models.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/autopipe_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/partition/CMakeFiles/autopipe_partition.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
