# Empty dependencies file for autopipe_pipeline.
# This may be replaced when dependencies are built.
