file(REMOVE_RECURSE
  "libautopipe_pipeline.a"
)
