file(REMOVE_RECURSE
  "CMakeFiles/autopipe_pipeline.dir/executor.cpp.o"
  "CMakeFiles/autopipe_pipeline.dir/executor.cpp.o.d"
  "CMakeFiles/autopipe_pipeline.dir/memory.cpp.o"
  "CMakeFiles/autopipe_pipeline.dir/memory.cpp.o.d"
  "CMakeFiles/autopipe_pipeline.dir/schedule.cpp.o"
  "CMakeFiles/autopipe_pipeline.dir/schedule.cpp.o.d"
  "libautopipe_pipeline.a"
  "libautopipe_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autopipe_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
