file(REMOVE_RECURSE
  "libautopipe_sim.a"
)
