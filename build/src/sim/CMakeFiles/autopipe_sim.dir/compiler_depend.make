# Empty compiler generated dependencies file for autopipe_sim.
# This may be replaced when dependencies are built.
