file(REMOVE_RECURSE
  "CMakeFiles/autopipe_sim.dir/background.cpp.o"
  "CMakeFiles/autopipe_sim.dir/background.cpp.o.d"
  "CMakeFiles/autopipe_sim.dir/cluster.cpp.o"
  "CMakeFiles/autopipe_sim.dir/cluster.cpp.o.d"
  "CMakeFiles/autopipe_sim.dir/flow_network.cpp.o"
  "CMakeFiles/autopipe_sim.dir/flow_network.cpp.o.d"
  "CMakeFiles/autopipe_sim.dir/gpu.cpp.o"
  "CMakeFiles/autopipe_sim.dir/gpu.cpp.o.d"
  "CMakeFiles/autopipe_sim.dir/simulator.cpp.o"
  "CMakeFiles/autopipe_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/autopipe_sim.dir/trace.cpp.o"
  "CMakeFiles/autopipe_sim.dir/trace.cpp.o.d"
  "libautopipe_sim.a"
  "libautopipe_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autopipe_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
