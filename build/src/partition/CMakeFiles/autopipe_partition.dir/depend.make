# Empty dependencies file for autopipe_partition.
# This may be replaced when dependencies are built.
