
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/partition/analytic_eval.cpp" "src/partition/CMakeFiles/autopipe_partition.dir/analytic_eval.cpp.o" "gcc" "src/partition/CMakeFiles/autopipe_partition.dir/analytic_eval.cpp.o.d"
  "/root/repo/src/partition/environment.cpp" "src/partition/CMakeFiles/autopipe_partition.dir/environment.cpp.o" "gcc" "src/partition/CMakeFiles/autopipe_partition.dir/environment.cpp.o.d"
  "/root/repo/src/partition/exhaustive.cpp" "src/partition/CMakeFiles/autopipe_partition.dir/exhaustive.cpp.o" "gcc" "src/partition/CMakeFiles/autopipe_partition.dir/exhaustive.cpp.o.d"
  "/root/repo/src/partition/neighborhood.cpp" "src/partition/CMakeFiles/autopipe_partition.dir/neighborhood.cpp.o" "gcc" "src/partition/CMakeFiles/autopipe_partition.dir/neighborhood.cpp.o.d"
  "/root/repo/src/partition/partition.cpp" "src/partition/CMakeFiles/autopipe_partition.dir/partition.cpp.o" "gcc" "src/partition/CMakeFiles/autopipe_partition.dir/partition.cpp.o.d"
  "/root/repo/src/partition/pipedream_planner.cpp" "src/partition/CMakeFiles/autopipe_partition.dir/pipedream_planner.cpp.o" "gcc" "src/partition/CMakeFiles/autopipe_partition.dir/pipedream_planner.cpp.o.d"
  "/root/repo/src/partition/rebalance.cpp" "src/partition/CMakeFiles/autopipe_partition.dir/rebalance.cpp.o" "gcc" "src/partition/CMakeFiles/autopipe_partition.dir/rebalance.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/autopipe_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/autopipe_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/autopipe_models.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/autopipe_comm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
