file(REMOVE_RECURSE
  "libautopipe_partition.a"
)
