file(REMOVE_RECURSE
  "CMakeFiles/autopipe_partition.dir/analytic_eval.cpp.o"
  "CMakeFiles/autopipe_partition.dir/analytic_eval.cpp.o.d"
  "CMakeFiles/autopipe_partition.dir/environment.cpp.o"
  "CMakeFiles/autopipe_partition.dir/environment.cpp.o.d"
  "CMakeFiles/autopipe_partition.dir/exhaustive.cpp.o"
  "CMakeFiles/autopipe_partition.dir/exhaustive.cpp.o.d"
  "CMakeFiles/autopipe_partition.dir/neighborhood.cpp.o"
  "CMakeFiles/autopipe_partition.dir/neighborhood.cpp.o.d"
  "CMakeFiles/autopipe_partition.dir/partition.cpp.o"
  "CMakeFiles/autopipe_partition.dir/partition.cpp.o.d"
  "CMakeFiles/autopipe_partition.dir/pipedream_planner.cpp.o"
  "CMakeFiles/autopipe_partition.dir/pipedream_planner.cpp.o.d"
  "CMakeFiles/autopipe_partition.dir/rebalance.cpp.o"
  "CMakeFiles/autopipe_partition.dir/rebalance.cpp.o.d"
  "libautopipe_partition.a"
  "libautopipe_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autopipe_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
