# Empty compiler generated dependencies file for autopipe_core.
# This may be replaced when dependencies are built.
