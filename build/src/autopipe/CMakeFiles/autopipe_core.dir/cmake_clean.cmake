file(REMOVE_RECURSE
  "CMakeFiles/autopipe_core.dir/controller.cpp.o"
  "CMakeFiles/autopipe_core.dir/controller.cpp.o.d"
  "CMakeFiles/autopipe_core.dir/features.cpp.o"
  "CMakeFiles/autopipe_core.dir/features.cpp.o.d"
  "CMakeFiles/autopipe_core.dir/meta_network.cpp.o"
  "CMakeFiles/autopipe_core.dir/meta_network.cpp.o.d"
  "CMakeFiles/autopipe_core.dir/profiler.cpp.o"
  "CMakeFiles/autopipe_core.dir/profiler.cpp.o.d"
  "CMakeFiles/autopipe_core.dir/resource_monitor.cpp.o"
  "CMakeFiles/autopipe_core.dir/resource_monitor.cpp.o.d"
  "CMakeFiles/autopipe_core.dir/switch_cost.cpp.o"
  "CMakeFiles/autopipe_core.dir/switch_cost.cpp.o.d"
  "CMakeFiles/autopipe_core.dir/training.cpp.o"
  "CMakeFiles/autopipe_core.dir/training.cpp.o.d"
  "libautopipe_core.a"
  "libautopipe_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autopipe_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
