file(REMOVE_RECURSE
  "libautopipe_core.a"
)
