
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/autopipe/controller.cpp" "src/autopipe/CMakeFiles/autopipe_core.dir/controller.cpp.o" "gcc" "src/autopipe/CMakeFiles/autopipe_core.dir/controller.cpp.o.d"
  "/root/repo/src/autopipe/features.cpp" "src/autopipe/CMakeFiles/autopipe_core.dir/features.cpp.o" "gcc" "src/autopipe/CMakeFiles/autopipe_core.dir/features.cpp.o.d"
  "/root/repo/src/autopipe/meta_network.cpp" "src/autopipe/CMakeFiles/autopipe_core.dir/meta_network.cpp.o" "gcc" "src/autopipe/CMakeFiles/autopipe_core.dir/meta_network.cpp.o.d"
  "/root/repo/src/autopipe/profiler.cpp" "src/autopipe/CMakeFiles/autopipe_core.dir/profiler.cpp.o" "gcc" "src/autopipe/CMakeFiles/autopipe_core.dir/profiler.cpp.o.d"
  "/root/repo/src/autopipe/resource_monitor.cpp" "src/autopipe/CMakeFiles/autopipe_core.dir/resource_monitor.cpp.o" "gcc" "src/autopipe/CMakeFiles/autopipe_core.dir/resource_monitor.cpp.o.d"
  "/root/repo/src/autopipe/switch_cost.cpp" "src/autopipe/CMakeFiles/autopipe_core.dir/switch_cost.cpp.o" "gcc" "src/autopipe/CMakeFiles/autopipe_core.dir/switch_cost.cpp.o.d"
  "/root/repo/src/autopipe/training.cpp" "src/autopipe/CMakeFiles/autopipe_core.dir/training.cpp.o" "gcc" "src/autopipe/CMakeFiles/autopipe_core.dir/training.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/autopipe_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/autopipe_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/autopipe_models.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/autopipe_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/partition/CMakeFiles/autopipe_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/pipeline/CMakeFiles/autopipe_pipeline.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/autopipe_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/rl/CMakeFiles/autopipe_rl.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
