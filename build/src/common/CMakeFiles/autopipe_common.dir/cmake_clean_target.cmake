file(REMOVE_RECURSE
  "libautopipe_common.a"
)
