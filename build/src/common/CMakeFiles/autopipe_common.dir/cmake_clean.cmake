file(REMOVE_RECURSE
  "CMakeFiles/autopipe_common.dir/flags.cpp.o"
  "CMakeFiles/autopipe_common.dir/flags.cpp.o.d"
  "CMakeFiles/autopipe_common.dir/log.cpp.o"
  "CMakeFiles/autopipe_common.dir/log.cpp.o.d"
  "CMakeFiles/autopipe_common.dir/rng.cpp.o"
  "CMakeFiles/autopipe_common.dir/rng.cpp.o.d"
  "CMakeFiles/autopipe_common.dir/stats.cpp.o"
  "CMakeFiles/autopipe_common.dir/stats.cpp.o.d"
  "CMakeFiles/autopipe_common.dir/table.cpp.o"
  "CMakeFiles/autopipe_common.dir/table.cpp.o.d"
  "libautopipe_common.a"
  "libautopipe_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autopipe_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
