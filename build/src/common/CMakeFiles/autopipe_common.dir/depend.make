# Empty dependencies file for autopipe_common.
# This may be replaced when dependencies are built.
