# Empty dependencies file for autopipe_rl.
# This may be replaced when dependencies are built.
