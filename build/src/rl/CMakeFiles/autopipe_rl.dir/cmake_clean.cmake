file(REMOVE_RECURSE
  "CMakeFiles/autopipe_rl.dir/dqn.cpp.o"
  "CMakeFiles/autopipe_rl.dir/dqn.cpp.o.d"
  "CMakeFiles/autopipe_rl.dir/replay_buffer.cpp.o"
  "CMakeFiles/autopipe_rl.dir/replay_buffer.cpp.o.d"
  "libautopipe_rl.a"
  "libautopipe_rl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autopipe_rl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
