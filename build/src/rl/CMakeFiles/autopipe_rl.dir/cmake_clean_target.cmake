file(REMOVE_RECURSE
  "libautopipe_rl.a"
)
