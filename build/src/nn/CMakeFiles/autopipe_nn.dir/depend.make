# Empty dependencies file for autopipe_nn.
# This may be replaced when dependencies are built.
