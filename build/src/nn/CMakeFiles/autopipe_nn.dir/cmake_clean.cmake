file(REMOVE_RECURSE
  "CMakeFiles/autopipe_nn.dir/loss.cpp.o"
  "CMakeFiles/autopipe_nn.dir/loss.cpp.o.d"
  "CMakeFiles/autopipe_nn.dir/lstm.cpp.o"
  "CMakeFiles/autopipe_nn.dir/lstm.cpp.o.d"
  "CMakeFiles/autopipe_nn.dir/matrix.cpp.o"
  "CMakeFiles/autopipe_nn.dir/matrix.cpp.o.d"
  "CMakeFiles/autopipe_nn.dir/mlp.cpp.o"
  "CMakeFiles/autopipe_nn.dir/mlp.cpp.o.d"
  "CMakeFiles/autopipe_nn.dir/optimizer.cpp.o"
  "CMakeFiles/autopipe_nn.dir/optimizer.cpp.o.d"
  "libautopipe_nn.a"
  "libautopipe_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autopipe_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
