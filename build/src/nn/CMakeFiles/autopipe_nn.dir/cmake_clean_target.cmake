file(REMOVE_RECURSE
  "libautopipe_nn.a"
)
