# Empty dependencies file for autopipe_baselines.
# This may be replaced when dependencies are built.
