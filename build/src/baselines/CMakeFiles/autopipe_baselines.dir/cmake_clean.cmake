file(REMOVE_RECURSE
  "CMakeFiles/autopipe_baselines.dir/data_parallel.cpp.o"
  "CMakeFiles/autopipe_baselines.dir/data_parallel.cpp.o.d"
  "CMakeFiles/autopipe_baselines.dir/model_parallel.cpp.o"
  "CMakeFiles/autopipe_baselines.dir/model_parallel.cpp.o.d"
  "libautopipe_baselines.a"
  "libautopipe_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autopipe_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
