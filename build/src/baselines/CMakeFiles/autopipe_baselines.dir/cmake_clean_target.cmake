file(REMOVE_RECURSE
  "libautopipe_baselines.a"
)
