
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/integration_test.cpp" "tests/CMakeFiles/integration_test.dir/integration_test.cpp.o" "gcc" "tests/CMakeFiles/integration_test.dir/integration_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/autopipe/CMakeFiles/autopipe_core.dir/DependInfo.cmake"
  "/root/repo/build/src/pipeline/CMakeFiles/autopipe_pipeline.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/autopipe_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/partition/CMakeFiles/autopipe_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/autopipe_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/autopipe_models.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/autopipe_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/autopipe_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/rl/CMakeFiles/autopipe_rl.dir/DependInfo.cmake"
  "/root/repo/build/src/convergence/CMakeFiles/autopipe_convergence.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/autopipe_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
