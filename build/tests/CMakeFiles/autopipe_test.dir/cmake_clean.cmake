file(REMOVE_RECURSE
  "CMakeFiles/autopipe_test.dir/autopipe_test.cpp.o"
  "CMakeFiles/autopipe_test.dir/autopipe_test.cpp.o.d"
  "autopipe_test"
  "autopipe_test.pdb"
  "autopipe_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autopipe_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
