# Empty compiler generated dependencies file for autopipe_test.
# This may be replaced when dependencies are built.
