# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/models_test[1]_include.cmake")
include("/root/repo/build/tests/comm_test[1]_include.cmake")
include("/root/repo/build/tests/partition_test[1]_include.cmake")
include("/root/repo/build/tests/pipeline_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/nn_test[1]_include.cmake")
include("/root/repo/build/tests/rl_test[1]_include.cmake")
include("/root/repo/build/tests/autopipe_test[1]_include.cmake")
include("/root/repo/build/tests/convergence_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
