file(REMOVE_RECURSE
  "CMakeFiles/autopipe_sim_cli.dir/autopipe_sim.cpp.o"
  "CMakeFiles/autopipe_sim_cli.dir/autopipe_sim.cpp.o.d"
  "autopipe_sim"
  "autopipe_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autopipe_sim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
