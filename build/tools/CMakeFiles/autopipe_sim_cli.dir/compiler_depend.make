# Empty compiler generated dependencies file for autopipe_sim_cli.
# This may be replaced when dependencies are built.
