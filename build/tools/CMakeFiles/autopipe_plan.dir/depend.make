# Empty dependencies file for autopipe_plan.
# This may be replaced when dependencies are built.
