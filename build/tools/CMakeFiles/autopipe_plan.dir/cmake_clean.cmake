file(REMOVE_RECURSE
  "CMakeFiles/autopipe_plan.dir/autopipe_plan.cpp.o"
  "CMakeFiles/autopipe_plan.dir/autopipe_plan.cpp.o.d"
  "autopipe_plan"
  "autopipe_plan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autopipe_plan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
